//! A minimal, dependency-free HTTP/1.1 layer: enough of RFC 9112 for the
//! campaign service — request parsing with hard size caps (the socket is a
//! hostile boundary), fixed-length responses, and chunked transfer encoding
//! for the progress-event stream. Connections are `Connection: close`: one
//! request per connection keeps the worker pool's state machine trivial, and
//! the service's clients (CLI scripts, curl, tests) don't need keep-alive.

use std::io::{BufRead, Write};

/// Upper bound on the request line and any single header line.
const MAX_LINE: usize = 8 * 1024;
/// Upper bound on header count.
const MAX_HEADERS: usize = 100;
/// Upper bound on a request body (campaign specs are kilobytes; anything
/// megabytes-large is hostile or a mistake).
pub const MAX_BODY: usize = 1024 * 1024;

/// A parsed request.
#[derive(Debug)]
pub struct Request {
    /// Upper-cased method (`GET`, `POST`, ...).
    pub method: String,
    /// Percent-decoded path, query string excluded.
    pub path: String,
    /// Percent-decoded query parameters, in order of appearance.
    pub query: Vec<(String, String)>,
    /// Raw headers (names lower-cased).
    pub headers: Vec<(String, String)>,
    /// Request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

impl Request {
    /// First query parameter with this name.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(key, _)| key == name)
            .map(|(_, value)| value.as_str())
    }

    /// Header value by (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(key, _)| *key == name)
            .map(|(_, value)| value.as_str())
    }
}

/// Why a request could not be parsed, each mapping to one response status.
#[derive(Debug)]
pub enum RequestError {
    /// Malformed request line, header, or encoding → 400.
    Bad(String),
    /// Request line, header block, or body over the caps → 413.
    TooLarge(String),
    /// Socket-level failure (peer vanished mid-request).
    Io(std::io::Error),
}

/// Reads one request from the stream. `Ok(None)` means the peer closed the
/// connection before sending anything (the graceful no-request case — and
/// the shape of the server's own shutdown wake-up connections).
pub fn read_request(stream: &mut impl BufRead) -> Result<Option<Request>, RequestError> {
    let line = match read_line(stream, "request line")? {
        None => return Ok(None),
        Some(line) => line,
    };
    let mut parts = line.split_ascii_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| RequestError::Bad("empty request line".to_owned()))?
        .to_ascii_uppercase();
    let target = parts
        .next()
        .ok_or_else(|| RequestError::Bad("request line has no target".to_owned()))?;
    let version = parts
        .next()
        .ok_or_else(|| RequestError::Bad("request line has no version".to_owned()))?;
    if !version.starts_with("HTTP/1.") {
        return Err(RequestError::Bad(format!("unsupported version {version}")));
    }

    let (raw_path, raw_query) = match target.split_once('?') {
        Some((path, query)) => (path, Some(query)),
        None => (target, None),
    };
    let path = percent_decode(raw_path)
        .ok_or_else(|| RequestError::Bad("malformed percent-encoding in path".to_owned()))?;
    let mut query = Vec::new();
    if let Some(raw_query) = raw_query {
        for pair in raw_query.split('&').filter(|pair| !pair.is_empty()) {
            let (key, value) = pair.split_once('=').unwrap_or((pair, ""));
            let decode = |text: &str| {
                percent_decode(&text.replace('+', " ")).ok_or_else(|| {
                    RequestError::Bad("malformed percent-encoding in query".to_owned())
                })
            };
            query.push((decode(key)?, decode(value)?));
        }
    }

    let mut headers = Vec::new();
    loop {
        let line = read_line(stream, "header")?
            .ok_or_else(|| RequestError::Bad("connection closed mid-headers".to_owned()))?;
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(RequestError::TooLarge(format!(
                "more than {MAX_HEADERS} headers"
            )));
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| RequestError::Bad(format!("header without ':': {line}")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_owned()));
    }

    let mut body = Vec::new();
    let content_length = headers
        .iter()
        .find(|(name, _)| name == "content-length")
        .map(|(_, value)| {
            value
                .parse::<usize>()
                .map_err(|_| RequestError::Bad(format!("bad Content-Length '{value}'")))
        })
        .transpose()?;
    if let Some(length) = content_length {
        if length > MAX_BODY {
            return Err(RequestError::TooLarge(format!(
                "body of {length} bytes exceeds the {MAX_BODY}-byte cap"
            )));
        }
        body.resize(length, 0);
        stream.read_exact(&mut body).map_err(RequestError::Io)?;
    }

    Ok(Some(Request {
        method,
        path,
        query,
        headers,
        body,
    }))
}

/// Reads one CRLF- (or bare-LF-) terminated line, capped at [`MAX_LINE`].
/// `Ok(None)` only on immediate EOF.
fn read_line(stream: &mut impl BufRead, what: &str) -> Result<Option<String>, RequestError> {
    let mut line = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        match stream.read(&mut byte) {
            Ok(0) => {
                if line.is_empty() {
                    return Ok(None);
                }
                return Err(RequestError::Bad(format!("EOF inside {what}")));
            }
            Ok(_) => {
                if byte[0] == b'\n' {
                    if line.last() == Some(&b'\r') {
                        line.pop();
                    }
                    return String::from_utf8(line)
                        .map(Some)
                        .map_err(|_| RequestError::Bad(format!("non-UTF-8 {what}")));
                }
                line.push(byte[0]);
                if line.len() > MAX_LINE {
                    return Err(RequestError::TooLarge(format!(
                        "{what} exceeds {MAX_LINE} bytes"
                    )));
                }
            }
            Err(error) => return Err(RequestError::Io(error)),
        }
    }
}

/// Decodes `%XX` escapes; `None` on truncated or non-hex escapes or non-UTF-8
/// results.
fn percent_decode(text: &str) -> Option<String> {
    let bytes = text.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            let hex = bytes.get(i + 1..i + 3)?;
            let hex = std::str::from_utf8(hex).ok()?;
            out.push(u8::from_str_radix(hex, 16).ok()?);
            i += 3;
        } else {
            out.push(bytes[i]);
            i += 1;
        }
    }
    String::from_utf8(out).ok()
}

/// The reason phrase for every status the service emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "",
    }
}

/// A fixed-length response.
#[derive(Debug)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Extra headers beyond Content-Type/Content-Length/Connection.
    pub headers: Vec<(String, String)>,
    /// Content-Type.
    pub content_type: &'static str,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response (the service's default shape).
    pub fn json(status: u16, body: String) -> Self {
        Self {
            status,
            headers: Vec::new(),
            content_type: "application/json",
            body: body.into_bytes(),
        }
    }

    /// A plain-text response (table/CSV query renderings).
    pub fn text(status: u16, body: String) -> Self {
        Self {
            status,
            headers: Vec::new(),
            content_type: "text/plain; charset=utf-8",
            body: body.into_bytes(),
        }
    }

    /// Adds a header.
    #[must_use]
    pub fn with_header(mut self, name: &str, value: impl Into<String>) -> Self {
        self.headers.push((name.to_owned(), value.into()));
        self
    }

    /// Writes the full response; the caller closes the connection after.
    ///
    /// # Errors
    ///
    /// Propagates socket write failures.
    pub fn write_to(&self, stream: &mut impl Write) -> std::io::Result<()> {
        write!(
            stream,
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n",
            self.status,
            reason(self.status),
            self.content_type,
            self.body.len()
        )?;
        for (name, value) in &self.headers {
            write!(stream, "{name}: {value}\r\n")?;
        }
        stream.write_all(b"\r\n")?;
        stream.write_all(&self.body)?;
        stream.flush()
    }
}

/// The streaming side: chunked transfer encoding for the JSON-lines event
/// feed, one chunk per event so clients observe progress live.
pub struct ChunkedWriter<W: Write> {
    stream: W,
}

impl<W: Write> ChunkedWriter<W> {
    /// Writes the response head and switches the connection to chunked mode.
    ///
    /// # Errors
    ///
    /// Propagates socket write failures.
    pub fn begin(mut stream: W, status: u16, content_type: &str) -> std::io::Result<Self> {
        write!(
            stream,
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nTransfer-Encoding: chunked\r\nConnection: close\r\n\r\n",
            status,
            reason(status),
            content_type
        )?;
        stream.flush()?;
        Ok(Self { stream })
    }

    /// Writes one chunk (flushed, so it is observable immediately).
    ///
    /// # Errors
    ///
    /// Propagates socket write failures (the normal way an event stream ends
    /// early: the client hung up).
    pub fn chunk(&mut self, data: &[u8]) -> std::io::Result<()> {
        if data.is_empty() {
            return Ok(()); // an empty chunk would terminate the stream
        }
        write!(self.stream, "{:x}\r\n", data.len())?;
        self.stream.write_all(data)?;
        self.stream.write_all(b"\r\n")?;
        self.stream.flush()
    }

    /// Terminates the stream with the zero-length chunk.
    ///
    /// # Errors
    ///
    /// Propagates socket write failures.
    pub fn finish(mut self) -> std::io::Result<()> {
        self.stream.write_all(b"0\r\n\r\n")?;
        self.stream.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &str) -> Result<Option<Request>, RequestError> {
        read_request(&mut BufReader::new(raw.as_bytes()))
    }

    #[test]
    fn parses_a_post_with_body_and_query() {
        let req = parse(
            "POST /campaigns?figure=fig%2012&x=a+b HTTP/1.1\r\nHost: h\r\nContent-Length: 4\r\n\r\nbody",
        )
        .expect("parses")
        .expect("a request");
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/campaigns");
        assert_eq!(req.query_param("figure"), Some("fig 12"));
        assert_eq!(req.query_param("x"), Some("a b"));
        assert_eq!(req.header("host"), Some("h"));
        assert_eq!(req.body, b"body");
    }

    #[test]
    fn immediate_eof_is_none_but_truncation_is_an_error() {
        assert!(parse("").expect("clean").is_none());
        assert!(matches!(
            parse("GET /x HTTP/1.1\r\nHos"),
            Err(RequestError::Bad(_))
        ));
        assert!(matches!(
            parse("GET /x HTTP/1.1\r\nContent-Length: zonk\r\n\r\n"),
            Err(RequestError::Bad(_))
        ));
        assert!(matches!(
            parse("GET /x FTP/9\r\n\r\n"),
            Err(RequestError::Bad(_))
        ));
    }

    #[test]
    fn size_caps_are_enforced() {
        let long_line = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(MAX_LINE + 1));
        assert!(matches!(parse(&long_line), Err(RequestError::TooLarge(_))));
        let big_body = format!(
            "POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY + 1
        );
        assert!(matches!(parse(&big_body), Err(RequestError::TooLarge(_))));
        let many_headers = format!(
            "GET /x HTTP/1.1\r\n{}\r\n",
            "h: v\r\n".repeat(MAX_HEADERS + 1)
        );
        assert!(matches!(
            parse(&many_headers),
            Err(RequestError::TooLarge(_))
        ));
    }

    #[test]
    fn responses_and_chunks_render_to_spec() {
        let mut out = Vec::new();
        Response::json(200, "{}".to_owned())
            .with_header("Retry-After", "2")
            .write_to(&mut out)
            .expect("write");
        let text = String::from_utf8(out).expect("utf8");
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.contains("Retry-After: 2\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));

        let mut out = Vec::new();
        let mut chunked = ChunkedWriter::begin(&mut out, 200, "application/jsonl").expect("begin");
        chunked.chunk(b"hello\n").expect("chunk");
        chunked.finish().expect("finish");
        let text = String::from_utf8(out).expect("utf8");
        assert!(text.contains("Transfer-Encoding: chunked"));
        assert!(text.ends_with("6\r\nhello\n\r\n0\r\n\r\n"));
    }
}
