//! Per-client token-bucket rate limiting with a pluggable clock, so tests
//! drive time deterministically instead of sleeping.
//!
//! Each client (keyed by peer IP) owns a bucket of `capacity` tokens
//! refilling at `refill_per_sec`. A request costs one token; an empty bucket
//! yields the number of seconds until a token exists again, which the
//! service surfaces as `429` + `Retry-After`.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// A monotonic millisecond clock the limiter reads time from.
pub trait Clock: Send + Sync {
    /// Milliseconds since an arbitrary fixed origin.
    fn now_millis(&self) -> u64;
}

/// The production clock: `std::time::Instant` anchored at construction.
#[derive(Debug)]
pub struct MonotonicClock {
    start: Instant,
}

impl MonotonicClock {
    /// A clock starting at zero now.
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        Self {
            start: Instant::now(),
        }
    }
}

impl Clock for MonotonicClock {
    fn now_millis(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_millis()).unwrap_or(u64::MAX)
    }
}

/// A hand-cranked clock for deterministic tests.
#[derive(Debug, Default)]
pub struct ManualClock {
    millis: AtomicU64,
}

impl ManualClock {
    /// A clock frozen at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Advances time.
    pub fn advance_millis(&self, millis: u64) {
        self.millis.fetch_add(millis, Ordering::SeqCst);
    }
}

impl Clock for ManualClock {
    fn now_millis(&self) -> u64 {
        self.millis.load(Ordering::SeqCst)
    }
}

#[derive(Debug, Clone, Copy)]
struct Bucket {
    tokens: f64,
    last_millis: u64,
}

/// The limiter: one bucket per client key.
pub struct RateLimiter {
    capacity: f64,
    refill_per_sec: f64,
    clock: std::sync::Arc<dyn Clock>,
    buckets: Mutex<HashMap<String, Bucket>>,
}

impl std::fmt::Debug for RateLimiter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RateLimiter")
            .field("capacity", &self.capacity)
            .field("refill_per_sec", &self.refill_per_sec)
            .finish_non_exhaustive()
    }
}

impl RateLimiter {
    /// A limiter allowing bursts of `capacity` requests, refilling at
    /// `refill_per_sec` tokens per second. `capacity == 0` disables limiting
    /// entirely (every request admitted).
    pub fn new(capacity: u32, refill_per_sec: f64, clock: std::sync::Arc<dyn Clock>) -> Self {
        Self {
            capacity: f64::from(capacity),
            refill_per_sec: refill_per_sec.max(0.0),
            clock,
            buckets: Mutex::new(HashMap::new()),
        }
    }

    /// Admits or rejects one request from `client`. On rejection, returns
    /// the whole number of seconds (at least 1) after which a retry can
    /// succeed — the `Retry-After` value.
    pub fn try_acquire(&self, client: &str) -> Result<(), u64> {
        if self.capacity <= 0.0 {
            return Ok(());
        }
        let now = self.clock.now_millis();
        let mut buckets = match self.buckets.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        let bucket = buckets.entry(client.to_owned()).or_insert(Bucket {
            tokens: self.capacity,
            last_millis: now,
        });
        let elapsed = now.saturating_sub(bucket.last_millis) as f64 / 1000.0;
        bucket.tokens = (bucket.tokens + elapsed * self.refill_per_sec).min(self.capacity);
        bucket.last_millis = now;
        if bucket.tokens >= 1.0 {
            bucket.tokens -= 1.0;
            return Ok(());
        }
        let deficit = 1.0 - bucket.tokens;
        let wait_secs = if self.refill_per_sec > 0.0 {
            (deficit / self.refill_per_sec).ceil() as u64
        } else {
            u64::MAX
        };
        Err(wait_secs.max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn bursts_then_throttles_then_refills_deterministically() {
        let clock = Arc::new(ManualClock::new());
        let limiter = RateLimiter::new(3, 1.0, clock.clone());
        for _ in 0..3 {
            assert!(limiter.try_acquire("1.2.3.4").is_ok());
        }
        let wait = limiter.try_acquire("1.2.3.4").expect_err("bucket empty");
        assert_eq!(wait, 1, "one token per second");
        // A different client has its own bucket.
        assert!(limiter.try_acquire("5.6.7.8").is_ok());
        // Half a second is not enough; a full second is.
        clock.advance_millis(500);
        assert!(limiter.try_acquire("1.2.3.4").is_err());
        clock.advance_millis(500);
        assert!(limiter.try_acquire("1.2.3.4").is_ok());
        assert!(limiter.try_acquire("1.2.3.4").is_err());
    }

    #[test]
    fn zero_capacity_disables_limiting() {
        let limiter = RateLimiter::new(0, 0.0, Arc::new(ManualClock::new()));
        for _ in 0..1000 {
            assert!(limiter.try_acquire("x").is_ok());
        }
    }

    #[test]
    fn tokens_cap_at_capacity() {
        let clock = Arc::new(ManualClock::new());
        let limiter = RateLimiter::new(2, 1.0, clock.clone());
        clock.advance_millis(60_000);
        assert!(limiter.try_acquire("x").is_ok());
        assert!(limiter.try_acquire("x").is_ok());
        assert!(limiter.try_acquire("x").is_err(), "burst stays capped at 2");
    }
}
