//! The simulated machine: approximate out-of-order cores, the three-level
//! cache hierarchy, prefetcher hook points and shared DRAM.
//!
//! ## Core model
//!
//! Each core is a cycle-stepped approximation of the paper's Skylake-class
//! configuration: a 224-entry ROB filled and retired 4-wide, an 80-entry
//! load buffer bounding outstanding memory operations, non-memory
//! instructions completing in one cycle, and memory instructions completing
//! when the hierarchy returns their data. This captures the two first-order
//! effects prefetching changes — exposed memory latency at the ROB head and
//! memory-level parallelism — without modelling the full pipeline.
//!
//! ## Hierarchy and prefetcher hook points
//!
//! Demand accesses probe L1 → L2 → LLC → DRAM. The optional PC-stride
//! prefetcher observes L1 accesses and fills into the L1 (Table 2). The
//! configurable L2 prefetcher is trained on every L1 miss — demand or
//! prefetch — exactly as in the paper's methodology (Section 4.1), and its
//! requests fill the L2 and the LLC. DRAM-bound fills are tracked in flight,
//! so a demand that arrives while its line is still being fetched by a
//! prefetch observes the remaining latency (prefetch timeliness). In-flight
//! L2 prefetch fills are bounded per core by
//! [`SystemConfig::prefetch_mshrs`] — a full prefetch queue drops further
//! candidates, as the hardware's would — which also keeps the simulator's
//! fill table small however bursty the predictor.

use crate::cache::Cache;
use crate::config::SystemConfig;
use crate::dram::Dram;
use crate::snapshot::MachineState;
use crate::stats::{CoreResult, PollutionBreakdown, PrefetchAccounting, SimResult};
use crate::tables::{LineSet, LineTable, ReadyQueue, Slot};
use dspatch_prefetchers::{AnyPrefetcher, StrideConfig, StridePrefetcher};
use dspatch_trace::{IntoTraceSource, TraceRecord, TraceSource};
use dspatch_types::{
    CoreId, FillLevel, LineAddr, MemoryAccess, PrefetchContext, PrefetchRequest, PrefetchSink,
    Prefetcher, SnapshotError, SnapshotState, StateReader, StateWriter,
};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Extra cycles charged for traversing the on-die interconnect to DRAM on
/// top of the cache probe latencies.
pub(crate) const DRAM_REQUEST_OVERHEAD: u64 = 10;
/// Upper bound on tracked pollution victims (memory guard).
const POLLUTION_TRACK_CAP: usize = 1 << 20;

#[derive(Debug, Clone, Copy)]
pub(crate) struct PendingFill {
    pub(crate) ready: u64,
    pub(crate) core: usize,
    /// Core whose prefetch MSHR this fill occupies (never reassigned by a
    /// demand promotion, unlike `core`).
    pub(crate) issuer: usize,
    pub(crate) is_prefetch: bool,
    pub(crate) fill_l1: bool,
    pub(crate) fill_l2: bool,
    pub(crate) low_priority: bool,
    pub(crate) used_by_demand: bool,
}

/// Placeholder used to initialize unoccupied [`LineTable`] slots.
pub(crate) const NO_FILL: PendingFill = PendingFill {
    ready: 0,
    core: 0,
    issuer: 0,
    is_prefetch: false,
    fill_l1: false,
    fill_l2: false,
    low_priority: false,
    used_by_demand: false,
};

/// A run of consecutive ROB slots sharing one completion cycle. Gap
/// (non-memory) instructions allocated in the same cycle all complete one
/// cycle later, so they compress into a single entry — the dominant ROB
/// traffic shrinks by the allocation width.
#[derive(Debug, Clone, Copy)]
pub(crate) struct RobEntry {
    completion: u64,
    count: u32,
}

/// One simulated core and everything private to it: trace supply, ROB and
/// load-buffer state, the L1/L2 caches, both prefetchers and their reusable
/// request sinks. `pub(crate)` because the epoch engine moves whole
/// `CoreState`s onto worker threads and steps them through the shared
/// [`Fabric`] trait.
pub(crate) struct CoreState {
    pub(crate) id: usize,
    pub(crate) workload: String,
    /// Pull-based record supply: the machine holds O(1) trace state however
    /// long the run (an owned `Trace` arrives as the materialized adapter).
    pub(crate) source: Box<dyn TraceSource>,
    /// One-record lookahead: the next record to issue, already pulled so
    /// its `gap` is known during the preceding gap-allocation phase.
    pub(crate) pending: Option<TraceRecord>,
    pub(crate) gap_remaining: u32,
    /// Records pulled from the source and fully consumed (issued in timed
    /// mode or applied functionally). The one-record lookahead in `pending`
    /// is *not* counted, so a checkpoint can replay the source exactly this
    /// many records to land back on the same lookahead.
    pub(crate) records_consumed: u64,
    /// Remaining records this core may issue before it reports finished
    /// (`u64::MAX` = unbounded). Sampled simulation sets this to the
    /// interval length so a measurement window covers an exact record
    /// count; the record that would exceed the budget stays in `pending`.
    pub(crate) record_budget: u64,
    /// Run-length-compressed, in-order ROB; `rob_len` tracks the summed
    /// instruction count (the occupancy the 224-entry bound applies to).
    pub(crate) rob: std::collections::VecDeque<RobEntry>,
    pub(crate) rob_len: usize,
    pub(crate) load_completions: BinaryHeap<Reverse<u64>>,
    pub(crate) l1: Cache,
    pub(crate) l2: Cache,
    pub(crate) l1_prefetcher: Option<StridePrefetcher>,
    pub(crate) l2_prefetcher: AnyPrefetcher,
    pub(crate) accounting: PrefetchAccounting,
    /// L2 prefetch fills currently in flight for this core (bounded by the
    /// configured prefetch MSHR budget).
    pub(crate) inflight_prefetches: usize,
    pub(crate) instructions: u64,
    pub(crate) finish_cycle: u64,
    pub(crate) finished: bool,
    pub(crate) last_memory_completion: u64,
    /// Reusable request buffer for the L1 stride prefetcher (owned by the
    /// core so the per-access hot path never allocates in steady state and
    /// the core can migrate to a worker thread with its buffers).
    pub(crate) l1_sink: PrefetchSink,
    /// Reusable request buffer for the L2 prefetcher.
    pub(crate) l2_sink: PrefetchSink,
}

impl CoreState {
    /// Appends `count` instructions completing at `completion`, merging with
    /// the newest run when the completion cycle matches.
    #[inline]
    fn rob_push(&mut self, completion: u64, count: u32) {
        self.rob_len += count as usize;
        if let Some(back) = self.rob.back_mut() {
            if back.completion == completion {
                back.count += count;
                return;
            }
        }
        self.rob.push_back(RobEntry { completion, count });
    }

    /// Drops load completions that have retired by `cycle`.
    #[inline]
    fn drain_load_completions(&mut self, cycle: u64) {
        while let Some(&Reverse(completion)) = self.load_completions.peek() {
            if completion <= cycle {
                self.load_completions.pop();
            } else {
                break;
            }
        }
    }
}

impl std::fmt::Debug for CoreState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CoreState")
            .field("id", &self.id)
            .field("workload", &self.workload)
            .field("prefetcher", &self.l2_prefetcher.name())
            .field("pending", &self.pending)
            .field("finished", &self.finished)
            .finish()
    }
}

#[derive(Debug)]
pub(crate) struct PollutionTracker {
    /// Lines evicted from the LLC by a prefetch fill and not re-demanded
    /// yet. A set, not a map: membership is the only state. Open-addressed —
    /// this is probed on every demand that leaves the L2.
    victims: LineSet,
    counts: PollutionBreakdown,
}

impl Default for PollutionTracker {
    fn default() -> Self {
        Self {
            // Pre-size past the typical victim population so common runs
            // never pay a rehash. Pollution-heavy runs can still grow the
            // set (up to POLLUTION_TRACK_CAP) and amortize rehashes then;
            // pre-sizing to the full 1M cap would cost ~10 MB per machine.
            victims: LineSet::with_capacity(1 << 16),
            counts: PollutionBreakdown::default(),
        }
    }
}

impl PollutionTracker {
    pub(crate) fn record_prefetch_victim(&mut self, line: LineAddr) {
        if self.victims.len() < POLLUTION_TRACK_CAP {
            self.victims.insert(line.as_u64());
        }
    }

    pub(crate) fn observe_demand(&mut self, line: LineAddr, went_to_dram: bool) {
        if self.victims.remove(line.as_u64()) {
            if went_to_dram {
                self.counts.bad_pollution += 1;
            } else {
                self.counts.prefetched_before_use += 1;
            }
        }
    }

    pub(crate) fn finish(mut self) -> PollutionBreakdown {
        self.counts.no_reuse += self.victims.len() as u64;
        self.counts
    }
}

/// Builds and runs a simulation.
///
/// # Example
///
/// See the [crate-level documentation](crate).
pub struct SimulationBuilder {
    config: SystemConfig,
    cores: Vec<(Box<dyn TraceSource>, AnyPrefetcher)>,
}

impl SimulationBuilder {
    /// Starts a builder for the given system configuration.
    pub fn new(config: SystemConfig) -> Self {
        Self {
            config,
            cores: Vec::new(),
        }
    }

    /// Adds a core pulling records from `source` with `l2_prefetcher`
    /// attached to its L2. Accepts any [`TraceSource`] (lazy synthetic
    /// workloads, file-backed traces) or an owned [`dspatch_trace::Trace`],
    /// which becomes the materialized adapter source.
    ///
    /// The prefetcher is anything convertible into [`AnyPrefetcher`]: a
    /// concrete registry prefetcher (statically dispatched on the per-access
    /// hot path) or a `Box<dyn Prefetcher>` (the dynamic escape hatch).
    #[must_use]
    pub fn with_core(
        mut self,
        source: impl IntoTraceSource,
        l2_prefetcher: impl Into<AnyPrefetcher>,
    ) -> Self {
        self.cores
            .push((source.into_trace_source(), l2_prefetcher.into()));
        self
    }

    /// Runs the simulation to completion.
    ///
    /// Single-core simulations run the exact cycle-interleaved serial loop.
    /// Multi-core simulations run the deterministic bounded-lag epoch
    /// engine (see [`crate::epoch`]): per-core shards advance independently
    /// within an epoch against a snapshot of the shared LLC/DRAM state, and
    /// every shared-resource event is replayed in a deterministic total
    /// order at the epoch boundary. [`SystemConfig::parallel_cores`] only
    /// selects whether the shards run on worker threads — the results are
    /// bit-identical for every worker count by construction.
    ///
    /// # Panics
    ///
    /// Panics if no cores were added, more cores were added than the
    /// configuration allows, or the configuration is invalid.
    pub fn run(self) -> SimResult {
        SIMULATIONS_STARTED.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        if self.cores.len() > 1 {
            crate::epoch::run_sharded(self.config, self.cores)
        } else {
            let mut machine = Machine::new(self.config, self.cores);
            machine.run()
        }
    }

    /// Builds the serial [`Machine`] without running it, for the sampled
    /// simulation workflow: functional warm-up, checkpoint capture/restore
    /// and bounded measurement intervals. Panics under the same conditions
    /// as [`SimulationBuilder::run`]; additionally the sampling API is
    /// serial-only, so more than one core is rejected.
    ///
    /// # Panics
    ///
    /// Panics if no core or more than one core was added, or the
    /// configuration is invalid.
    pub fn into_machine(self) -> Machine {
        assert!(
            self.cores.len() <= 1,
            "sampled simulation is single-core; use SimulationBuilder::run for multi-core"
        );
        SIMULATIONS_STARTED.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        Machine::new(self.config, self.cores)
    }
}

/// Process-wide count of simulations started, see [`simulations_started`].
static SIMULATIONS_STARTED: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// Process-wide count of [`SimulationBuilder::run`] invocations since the
/// process started. Purely diagnostic: the experiment harness's tests use
/// the delta across a campaign to prove baseline runs are memoized rather
/// than re-simulated per prefetcher column.
pub fn simulations_started() -> u64 {
    SIMULATIONS_STARTED.load(std::sync::atomic::Ordering::Relaxed)
}

/// Builds the per-core machines for either engine. Panics on an invalid
/// configuration or core count (the `SimulationBuilder::run` contract).
pub(crate) fn build_cores(
    config: &SystemConfig,
    core_setup: Vec<(Box<dyn TraceSource>, AnyPrefetcher)>,
) -> Vec<CoreState> {
    // `0 = auto` on the parallel knobs is an engine-level convenience;
    // validate the resolved form (`validate` itself rejects the sentinels
    // so spec-time callers get an explicit, machine-independent config).
    config
        .clone()
        .resolved_parallel()
        .validate()
        .expect("invalid system configuration");
    assert!(!core_setup.is_empty(), "simulation needs at least one core");
    assert!(
        core_setup.len() <= config.cores,
        "more cores supplied ({}) than the configuration allows ({})",
        core_setup.len(),
        config.cores
    );
    core_setup
        .into_iter()
        .enumerate()
        .map(|(id, (mut source, l2_prefetcher))| {
            let workload = source.meta().name;
            let pending = source.next_record();
            let gap = pending.map_or(0, |r| r.gap);
            CoreState {
                id,
                workload,
                source,
                pending,
                gap_remaining: gap,
                records_consumed: 0,
                record_budget: u64::MAX,
                rob: std::collections::VecDeque::with_capacity(config.core.rob_entries),
                rob_len: 0,
                load_completions: BinaryHeap::new(),
                l1: Cache::new(config.l1.clone()),
                l2: Cache::new(config.l2.clone()),
                l1_prefetcher: config
                    .l1_stride_prefetcher
                    .then(|| StridePrefetcher::new(StrideConfig::default())),
                l2_prefetcher,
                accounting: PrefetchAccounting::default(),
                inflight_prefetches: 0,
                instructions: 0,
                finish_cycle: 0,
                finished: false,
                last_memory_completion: 0,
                l1_sink: PrefetchSink::new(),
                l2_sink: PrefetchSink::new(),
            }
        })
        .collect()
}

/// What a core sees beyond its private L1/L2 boundary. The serial engine's
/// [`SharedFabric`] implements it against the real shared LLC/DRAM; the
/// epoch engine's shard view implements it against an epoch-start snapshot
/// plus a private overlay, logging every shared-state effect for ordered
/// replay. Keeping the delicate core-stepping logic generic over this trait
/// is what guarantees both engines step cores identically.
pub(crate) trait Fabric {
    /// The DRAM bandwidth quartile this core currently observes.
    fn quartile(&self) -> dspatch_types::BandwidthQuartile;

    /// Resolves a demand access that missed the L1: probes L2 → LLC →
    /// in-flight fills → DRAM, performs fills/accounting, and returns
    /// `(latency beyond the L1 probe, l2_hit)`.
    fn access_beyond_l1(
        &mut self,
        core: &mut CoreState,
        line: LineAddr,
        cycle: u64,
        count_coverage: bool,
    ) -> (u64, bool);

    /// Issues one L2-prefetcher request. Returns `false` when the core's
    /// prefetch MSHR budget is exhausted (the caller stops iterating the
    /// remaining candidates — a full prefetch queue drops them).
    fn issue_l2_prefetch(
        &mut self,
        core: &mut CoreState,
        request: &PrefetchRequest,
        cycle: u64,
    ) -> bool;
}

/// The shared side of the serial machine: LLC, DRAM, the in-flight fill
/// table and pollution tracking.
pub(crate) struct SharedFabric {
    llc: Cache,
    dram: Dram,
    /// In-flight DRAM fills keyed by line address. An open-addressed arena
    /// seeded from the MSHR configuration: probed at least once per L2 miss
    /// and per prefetch candidate.
    pending: LineTable<PendingFill>,
    /// Fill events ordered by (ready, line): a calendar queue so cost does
    /// not scale with the DRAM backlog (see [`ReadyQueue`]).
    ready_queue: ReadyQueue,
    pollution: PollutionTracker,
    l2_latency: u64,
    llc_latency: u64,
    prefetch_mshrs: usize,
}

/// The simulated machine (the exact cycle-interleaved serial engine).
pub struct Machine {
    config: SystemConfig,
    cycle: u64,
    cores: Vec<CoreState>,
    fab: SharedFabric,
}

impl Machine {
    pub(crate) fn new(
        config: SystemConfig,
        core_setup: Vec<(Box<dyn TraceSource>, AnyPrefetcher)>,
    ) -> Self {
        let cores = build_cores(&config, core_setup);
        // In-flight fills are bounded: demands by the per-core load buffers,
        // prefetches by the per-core prefetch MSHR budget. Seeding the arena
        // just past that population keeps the whole table a few KB — every
        // probe on the per-request hot path stays cache-resident — while
        // growth remains the safety valve if a configuration outruns it.
        let pending_capacity = (config.cores
            * (config.prefetch_mshrs + config.core.load_buffer_entries + 16))
            .max(128);
        let fab = SharedFabric {
            llc: Cache::new(config.llc.clone()),
            dram: Dram::new(config.dram, config.core.clock_mhz),
            pending: LineTable::with_capacity(pending_capacity, NO_FILL),
            ready_queue: ReadyQueue::new(),
            pollution: PollutionTracker::default(),
            l2_latency: config.l2.latency,
            llc_latency: config.llc.latency,
            prefetch_mshrs: config.prefetch_mshrs,
        };
        Self {
            cycle: 0,
            cores,
            fab,
            config,
        }
    }

    /// Runs the machine until every core finishes (trace exhausted or
    /// record budget spent) and returns the accumulated result. Public for
    /// the sampling workflow ([`SimulationBuilder::into_machine`]); plain
    /// exact runs should prefer [`SimulationBuilder::run`].
    pub fn run(&mut self) -> SimResult {
        while !self.cores.iter().all(|c| c.finished) {
            self.step();
            if self.config.max_cycles > 0 && self.cycle > self.config.max_cycles {
                // Safety valve: mark all cores finished so the run terminates.
                for core in &mut self.cores {
                    if !core.finished {
                        core.finished = true;
                        core.finish_cycle = self.cycle;
                    }
                }
            }
            self.skip_idle_cycles();
        }
        let cycles = self.cycle;
        let cores = self
            .cores
            .iter_mut()
            .map(|core| {
                core.accounting.finalize();
                CoreResult {
                    workload: core.workload.clone(),
                    prefetcher: core.l2_prefetcher.name().to_owned(),
                    instructions: core.instructions,
                    finish_cycle: core.finish_cycle.max(1),
                    l1: *core.l1.stats(),
                    l2: *core.l2.stats(),
                    accounting: core.accounting,
                }
            })
            .collect();
        SimResult {
            cores,
            llc: *self.fab.llc.stats(),
            dram: *self.fab.dram.stats(),
            pollution: std::mem::take(&mut self.fab.pollution).finish(),
            cycles,
            cache_geometry: vec![
                self.config.l1.geometry(),
                self.config.l2.geometry(),
                self.config.llc.geometry(),
            ],
            sampling: None,
        }
    }

    fn step(&mut self) {
        self.cycle += 1;
        let cycle = self.cycle;
        self.drain_ready_fills(cycle);
        self.fab.dram.advance(cycle);
        for core in &mut self.cores {
            step_core_generic(core, &mut self.fab, &self.config, cycle);
        }
    }

    /// Fast-forwards over cycles whose effect on every core is either
    /// nothing (idle stall) or closed-form (steady gap-instruction
    /// allocation). This is exact, not approximate:
    ///
    /// * An idle core's per-cycle work is empty — the retire loop breaks at
    ///   the ROB head and allocation is blocked — so skipping to the next
    ///   event changes nothing.
    /// * A core allocating only gap instructions evolves deterministically
    ///   (`width` allocations per cycle, matching retirements when the ROB
    ///   head is current, pure accumulation when it is blocked), so its
    ///   state after `k` such cycles is computed directly.
    /// * Pending DRAM fills only mutate caches, which no skipped core
    ///   touches; they materialize, in ready order, at the next stepped
    ///   cycle before any core runs — exactly the order the cycle-by-cycle
    ///   loop produces. The DRAM bandwidth tracker advances by window
    ///   arithmetic and is jump-safe.
    ///
    /// Memory-bound and compute-gap phases — where simulated time
    /// concentrates — therefore cost wall-clock per *event*, not per cycle.
    fn skip_idle_cycles(&mut self) {
        if !self.config.cycle_skipping {
            return;
        }
        let mut skip = u64::MAX;
        for core in &self.cores {
            skip = skip.min(core_skip_allowance(core, self.cycle, &self.config));
            if skip == 0 {
                return; // a core does non-trivial work next cycle
            }
        }
        if skip == u64::MAX {
            return; // all cores finished; the run loop exits
        }
        if self.config.max_cycles > 0 {
            // Never jump past the safety valve's trigger point.
            skip = skip.min((self.config.max_cycles + 1).saturating_sub(self.cycle + 1));
        }
        if skip == 0 {
            return;
        }
        let cycle = self.cycle;
        let width = self.config.core.width;
        let rob_entries = self.config.core.rob_entries;
        for core in &mut self.cores {
            advance_core_closed_form(core, cycle, skip, width, rob_entries);
        }
        self.cycle += skip;
    }
}

/// How many upcoming cycles (starting at `cycle + 1`) this core can be
/// advanced without stepping it, or `u64::MAX` if it is finished. Zero means
/// the next cycle must run normally. Mirrors the conditions of
/// `step_core_generic` exactly. Shared by the serial engine (which takes the
/// minimum across cores) and the epoch engine (which skips each shard
/// independently and uses it to size event-free epochs).
pub(crate) fn core_skip_allowance(core: &CoreState, cycle: u64, config: &SystemConfig) -> u64 {
    {
        if core.finished {
            return u64::MAX;
        }
        let width = config.core.width;
        let rob_entries = config.core.rob_entries;
        let head = core.rob.front().map(|e| e.completion);
        let has_records = core.pending.is_some() && core.record_budget > 0;

        if has_records && core.gap_remaining > 0 {
            // Gap-allocation phase: closed-form for whole cycles of `width`
            // gap instructions. The ROB front may hold already-completed
            // instructions (the backlog) followed by a blocked run.
            let gap_cycles = u64::from(core.gap_remaining) / width as u64;
            if gap_cycles >= 1 {
                let mut backlog = 0usize;
                let mut next_blocked = u64::MAX;
                for entry in core.rob.iter() {
                    if entry.completion <= cycle + 1 {
                        backlog += entry.count as usize;
                    } else {
                        next_blocked = entry.completion;
                        break;
                    }
                }
                if backlog >= width {
                    // Backlog regime: every streak cycle retires exactly
                    // `width` already-completed instructions and (with the
                    // freed slots, if the ROB was full) allocates `width`
                    // gap instructions — occupancy never grows and the
                    // blocked run (if any) never reaches the head.
                    return gap_cycles.min((backlog / width) as u64);
                }
                if core.rob_len < rob_entries {
                    // Accumulation regime: the < `width`-deep current front
                    // retires in the first cycle; afterwards allocations
                    // pile up (blocked head) or retire steadily (no blocked
                    // run at all).
                    let space_cycles = ((rob_entries - core.rob_len + backlog) / width) as u64;
                    let mut skip = gap_cycles.min(space_cycles);
                    if next_blocked != u64::MAX {
                        skip = skip.min(next_blocked - cycle - 1);
                    }
                    return skip;
                }
                // ROB full with a blocked (or shallow) head: idle until the
                // head retires.
                return head.map_or(0, |h| h.saturating_sub(cycle + 1));
            }
            // Partial gap (followed by the memory record within one cycle).
            if core.rob_len < rob_entries {
                return 0; // it allocates next cycle: step normally
            }
            return head.map_or(0, |h| h.saturating_sub(cycle + 1));
        }
        if has_records && core.rob_len < rob_entries {
            // Next up is a memory record.
            if core.load_completions.len() < config.core.load_buffer_entries {
                return 0; // it issues next cycle
            }
            // Blocked on the load buffer: idle until a load completes (or
            // the ROB head retires, whichever is earlier).
            let load_head = core
                .load_completions
                .peek()
                .map_or(u64::MAX, |&Reverse(c)| c);
            return load_head
                .min(head.unwrap_or(u64::MAX))
                .saturating_sub(cycle + 1);
        }
        // Cannot allocate: either the trace is exhausted or the ROB is full.
        match head {
            // Exhausted trace, empty ROB: the core finishes next step.
            None => 0,
            // Idle until the head retires.
            Some(h) => h.saturating_sub(cycle + 1),
        }
    }
}

/// Applies `skip` cycles' worth of closed-form evolution to `core`
/// (validated by `core_skip_allowance`): gap-phase cores allocate
/// `width * skip` instructions, idle cores are untouched (their lazy
/// load-completion drain happens at the next real step, identically to
/// the per-cycle loop's cumulative pops).
pub(crate) fn advance_core_closed_form(
    core: &mut CoreState,
    cycle: u64,
    skip: u64,
    width: usize,
    rob_entries: usize,
) {
    // The guard must classify the core exactly as `core_skip_allowance`
    // did: only a core in the gap-allocation phase evolves during a skip.
    if core.finished || core.gap_remaining == 0 || core.pending.is_none() || core.record_budget == 0
    {
        return;
    }
    let gap_cycles = u64::from(core.gap_remaining) / width as u64;
    if gap_cycles == 0 {
        return; // partial-gap core: it was idle (ROB full) or skip is 0
    }
    let mut backlog = 0usize;
    for entry in core.rob.iter() {
        if entry.completion > cycle + 1 {
            break;
        }
        backlog += entry.count as usize;
    }
    if backlog < width && core.rob_len >= rob_entries {
        return; // ROB-full idle core, untouched during the skip
    }
    debug_assert!(skip <= gap_cycles);
    let allocated = skip * width as u64;
    if backlog >= width {
        // Backlog regime: retire `width` per streak cycle, count-wise
        // from the front runs; every allocation stays in flight (it can
        // only retire once it reaches the head, which the backlog and
        // any blocked run prevent until after the streak).
        let mut to_retire = allocated as usize;
        debug_assert!(backlog >= to_retire);
        while to_retire > 0 {
            let front = core.rob.front_mut().expect("backlog covers retirement");
            let take = to_retire.min(front.count as usize);
            front.count -= take as u32;
            core.rob_len -= take;
            to_retire -= take;
            if front.count == 0 {
                core.rob.pop_front();
            }
        }
        core.rob_push(cycle + skip + 1, allocated as u32);
    } else {
        // Accumulation regime: the current front retires in the first
        // streak cycle.
        while let Some(front) = core.rob.front() {
            if front.completion > cycle + 1 {
                break;
            }
            core.rob_len -= front.count as usize;
            core.rob.pop_front();
        }
        if core.rob.is_empty() {
            // Steady state: each cycle's `width` allocations retire the
            // next cycle; only the final cycle's allocation remains.
            core.rob_push(cycle + skip + 1, width as u32);
        } else {
            // Blocked head: allocations accumulate behind it. Their
            // completions (cycle+2 ..= cycle+skip+1) all precede their
            // earliest possible retirement, so a single run at the
            // latest completion retires identically.
            core.rob_push(cycle + skip + 1, allocated as u32);
        }
    }
    core.gap_remaining -= allocated as u32;
    core.instructions += allocated;
    core.drain_load_completions(cycle + skip);
}

impl Machine {
    /// Materializes DRAM fills whose data has arrived.
    fn drain_ready_fills(&mut self, cycle: u64) {
        while let Some((_, line)) = self.fab.ready_queue.pop_ready(cycle) {
            let Some(fill) = self.fab.pending.remove(line) else {
                continue;
            };
            if fill.ready > cycle {
                // A duplicate queue entry from a superseded request; requeue.
                self.fab.pending.insert(line, fill);
                self.fab.ready_queue.push(fill.ready, line);
                continue;
            }
            if fill.is_prefetch {
                // The fill materializes: its prefetch MSHR frees up.
                self.cores[fill.issuer].inflight_prefetches -= 1;
            }
            let line_addr = LineAddr::new(line);
            let is_prefetch = fill.is_prefetch && !fill.used_by_demand;
            let core = &mut self.cores[fill.core];
            if fill.fill_l2 {
                core.l2.fill(line_addr, is_prefetch, fill.low_priority);
            }
            if fill.fill_l1 {
                core.l1.fill(line_addr, is_prefetch, fill.low_priority);
            }
            if let Some(eviction) = self.fab.llc.fill(line_addr, is_prefetch, fill.low_priority) {
                if is_prefetch {
                    self.fab.pollution.record_prefetch_victim(eviction.line);
                }
            }
        }
    }
}

/// Sampled-simulation support: functional warm-up, bounded measurement
/// intervals and machine checkpoints. The checkpoint container and its
/// byte-layout versioning live in [`crate::snapshot`].
impl Machine {
    /// Consumes up to `accesses` trace records per core in **functional
    /// warm-up mode**: caches and prefetcher pattern tables are updated
    /// with the timed path's probe order, but the timing model — ROB,
    /// load buffer, MSHRs, DRAM banks, cycle accounting — is skipped
    /// entirely, and DRAM-bound fills materialize immediately.
    /// `instructions` and the cycle counter do not advance, so a
    /// measurement interval started afterwards reports only its own work.
    ///
    /// Returns the number of records actually consumed (the minimum across
    /// cores; less than `accesses` only when a trace runs out).
    pub fn run_functional(&mut self, accesses: u64) -> u64 {
        let bandwidth = self.fab.dram.bandwidth_quartile();
        let prefetch_budget = self.fab.prefetch_mshrs;
        let mut min_consumed = u64::MAX;
        for core in &mut self.cores {
            let mut consumed = 0;
            while consumed < accesses {
                let Some(record) = core.pending else { break };
                functional_access(core, &mut self.fab.llc, bandwidth, prefetch_budget, &record);
                core.records_consumed += 1;
                core.pending = core.source.next_record();
                core.gap_remaining = core.pending.map_or(0, |r| r.gap);
                consumed += 1;
            }
            min_consumed = min_consumed.min(consumed);
        }
        if min_consumed == u64::MAX {
            0
        } else {
            min_consumed
        }
    }

    /// Discards up to `accesses` trace records per core without simulating
    /// them at all — no cache probes, no prefetcher training. Used by the
    /// sampling harness to fast-forward the bulk of a gap between
    /// measurement intervals before a bounded functional re-warm; machine
    /// state goes stale by exactly the skipped span, which the re-warm then
    /// repairs. Runs at trace-generation speed.
    ///
    /// Returns the number of records actually discarded (the minimum across
    /// cores; less than `accesses` only when a trace runs out).
    pub fn skip_records(&mut self, accesses: u64) -> u64 {
        let mut min_consumed = u64::MAX;
        for core in &mut self.cores {
            let mut consumed = 0;
            while consumed < accesses {
                if core.pending.is_none() {
                    break;
                }
                core.records_consumed += 1;
                core.pending = core.source.next_record();
                core.gap_remaining = core.pending.map_or(0, |r| r.gap);
                consumed += 1;
            }
            min_consumed = min_consumed.min(consumed);
        }
        if min_consumed == u64::MAX {
            0
        } else {
            min_consumed
        }
    }

    /// Runs one detailed **measurement interval** of exactly `accesses`
    /// records per core (fewer only if the trace ends) and returns its
    /// isolated [`SimResult`]: interval statistics are reset on entry, so
    /// IPC/coverage/pollution describe this window alone, while warmed
    /// cache and predictor contents carry over. Afterwards the machine is
    /// back at a functional boundary — the record that would have exceeded
    /// the budget is still pending, and in-flight timing state is drained —
    /// so fast-forwarding or capturing can follow directly.
    pub fn run_interval(&mut self, accesses: u64) -> SimResult {
        self.begin_interval();
        for core in &mut self.cores {
            core.record_budget = accesses;
            core.finished = false;
        }
        let result = self.run();
        // Return to a functional boundary: lift the budget and drop timing
        // residue (unmaterialized prefetch fills are abandoned, as they
        // would be by a context switch).
        for core in &mut self.cores {
            core.record_budget = u64::MAX;
            core.finished = false;
            core.rob.clear();
            core.rob_len = 0;
            core.load_completions.clear();
            core.inflight_prefetches = 0;
            core.last_memory_completion = 0;
        }
        self.fab.pending.clear();
        self.fab.ready_queue = ReadyQueue::new();
        result
    }

    /// Resets everything a [`SimResult`] reports — cycle counter, cache and
    /// DRAM statistics, accounting, pollution — without touching the warmed
    /// cache contents, predictor state or trace position.
    fn begin_interval(&mut self) {
        self.cycle = 0;
        self.fab.pending.clear();
        self.fab.ready_queue = ReadyQueue::new();
        self.fab.pollution = PollutionTracker::default();
        self.fab.llc.reset_stats();
        self.fab.dram.reset_interval();
        for core in &mut self.cores {
            core.l1.reset_stats();
            core.l2.reset_stats();
            core.accounting = PrefetchAccounting::default();
            core.instructions = 0;
            core.finish_cycle = 0;
            core.finished = false;
            core.last_memory_completion = 0;
            core.rob.clear();
            core.rob_len = 0;
            core.load_completions.clear();
            core.inflight_prefetches = 0;
        }
    }

    /// Serializes the machine into a versioned [`MachineState`] checkpoint.
    ///
    /// Only a **functional boundary** can be captured — no ROB/load-buffer
    /// occupancy, no in-flight DRAM fills, no outstanding prefetch MSHRs —
    /// which is exactly the state [`Machine::run_functional`] and
    /// [`Machine::run_interval`] leave behind. Anything else would need the
    /// whole event calendar serialized and is rejected with
    /// [`SnapshotError::Unsupported`].
    pub fn capture(&self) -> Result<MachineState, SnapshotError> {
        if !self.fab.pending.is_empty() || !self.fab.ready_queue.is_empty() {
            return Err(SnapshotError::Unsupported(
                "capture requires a functional boundary: DRAM fills are in flight".to_owned(),
            ));
        }
        for core in &self.cores {
            if core.rob_len != 0
                || !core.load_completions.is_empty()
                || core.inflight_prefetches != 0
            {
                return Err(SnapshotError::Unsupported(format!(
                    "capture requires a functional boundary: core {} has in-flight work",
                    core.id
                )));
            }
        }
        let mut writer = MachineState::writer();
        writer.put_u64(self.cycle);
        writer.put_len(self.cores.len());
        for core in &self.cores {
            writer.put_u64(core.records_consumed);
            writer.put_u64(core.instructions);
            writer.put_u64(core.finish_cycle);
            writer.put_u64(core.last_memory_completion);
            core.l1.save_state(&mut writer)?;
            core.l2.save_state(&mut writer)?;
            match core.l1_prefetcher.as_ref() {
                Some(prefetcher) => {
                    writer.put_bool(true);
                    prefetcher.save_state(&mut writer)?;
                }
                None => writer.put_bool(false),
            }
            // The L2 prefetcher state is tagged and length-prefixed so a
            // restore into a machine with a *different* prefetcher (shared
            // warm-up forked across prefetcher columns) can skip it.
            writer.put_str(core.l2_prefetcher.snapshot_tag());
            let mut section = StateWriter::new();
            core.l2_prefetcher.save_state(&mut section)?;
            writer.put_section(&section.into_bytes());
            let acc = &core.accounting;
            writer.put_u64(acc.l2_demand_accesses);
            writer.put_u64(acc.covered);
            writer.put_u64(acc.uncovered);
            writer.put_u64(acc.prefetches_issued);
            writer.put_u64(acc.prefetches_used);
            writer.put_u64(acc.prefetches_unused);
        }
        self.fab.llc.save_state(&mut writer)?;
        self.fab.dram.save_state(&mut writer)?;
        let counts = &self.fab.pollution.counts;
        writer.put_u64(counts.no_reuse);
        writer.put_u64(counts.prefetched_before_use);
        writer.put_u64(counts.bad_pollution);
        Ok(MachineState::from_writer(writer))
    }

    /// Restores a [`MachineState`] captured from a machine with the same
    /// configuration, core count and traces. The trace position is
    /// re-derived by replaying each source to the checkpoint's consumed
    /// count (generation only — no cache simulation), so snapshots stay
    /// small and valid for any `TraceSource`.
    ///
    /// The stored L2-prefetcher state is applied only when its tag matches
    /// this machine's prefetcher; otherwise the predictor keeps its current
    /// state (the shared-warm-up fork: one neutral checkpoint, many
    /// prefetcher columns).
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError`] on a header/layout mismatch or when the
    /// machine shape disagrees with the checkpoint. The machine may be
    /// partially overwritten after an error and must be discarded.
    pub fn restore(&mut self, state: &MachineState) -> Result<(), SnapshotError> {
        let mut reader = state.body_reader()?;
        self.cycle = reader.get_u64()?;
        let core_count = reader.get_len()?;
        if core_count != self.cores.len() {
            return Err(SnapshotError::Invalid(format!(
                "snapshot holds {core_count} cores, machine has {}",
                self.cores.len()
            )));
        }
        for core in &mut self.cores {
            let records_consumed = reader.get_u64()?;
            core.instructions = reader.get_u64()?;
            core.finish_cycle = reader.get_u64()?;
            core.last_memory_completion = reader.get_u64()?;
            core.l1.load_state(&mut reader)?;
            core.l2.load_state(&mut reader)?;
            let has_stride = reader.get_bool()?;
            match (has_stride, core.l1_prefetcher.as_mut()) {
                (true, Some(prefetcher)) => prefetcher.load_state(&mut reader)?,
                (false, None) => {}
                _ => {
                    return Err(SnapshotError::Invalid(
                        "snapshot and machine disagree on the L1 stride prefetcher".to_owned(),
                    ))
                }
            }
            let tag = reader.get_str()?;
            let section = reader.get_section()?;
            if tag == core.l2_prefetcher.snapshot_tag() {
                let mut section_reader = StateReader::new(section);
                core.l2_prefetcher.load_state(&mut section_reader)?;
                section_reader.expect_end()?;
            }
            core.accounting = PrefetchAccounting {
                l2_demand_accesses: reader.get_u64()?,
                covered: reader.get_u64()?,
                uncovered: reader.get_u64()?,
                prefetches_issued: reader.get_u64()?,
                prefetches_used: reader.get_u64()?,
                prefetches_unused: reader.get_u64()?,
            };
            core.source.reset();
            for _ in 0..records_consumed {
                if core.source.next_record().is_none() {
                    return Err(SnapshotError::Invalid(format!(
                        "trace '{}' is shorter than the snapshot's {records_consumed} consumed records",
                        core.workload
                    )));
                }
            }
            core.records_consumed = records_consumed;
            core.pending = core.source.next_record();
            core.gap_remaining = core.pending.map_or(0, |r| r.gap);
            core.record_budget = u64::MAX;
            core.finished = false;
            core.rob.clear();
            core.rob_len = 0;
            core.load_completions.clear();
            core.inflight_prefetches = 0;
        }
        self.fab.llc.load_state(&mut reader)?;
        self.fab.dram.load_state(&mut reader)?;
        let mut pollution = PollutionTracker::default();
        pollution.counts.no_reuse = reader.get_u64()?;
        pollution.counts.prefetched_before_use = reader.get_u64()?;
        pollution.counts.bad_pollution = reader.get_u64()?;
        self.fab.pollution = pollution;
        self.fab.pending.clear();
        self.fab.ready_queue = ReadyQueue::new();
        reader.expect_end()?;
        Ok(())
    }
}

/// Applies one trace record in functional warm-up mode, mirroring
/// `demand_access_generic`'s probe/train order without any timing: fills
/// that would arrive from DRAM materialize immediately, MSHR bounds and
/// pollution-victim tracking are skipped.
fn functional_access(
    core: &mut CoreState,
    llc: &mut Cache,
    bandwidth: dspatch_types::BandwidthQuartile,
    prefetch_budget: usize,
    record: &TraceRecord,
) {
    let line = record.addr.line();
    let access = MemoryAccess::new(record.pc, record.addr, record.kind).with_core(CoreId(core.id));

    let mut l1_sink = std::mem::take(&mut core.l1_sink);
    l1_sink.clear();
    if let Some(prefetcher) = core.l1_prefetcher.as_mut() {
        let ctx = PrefetchContext::at_cycle(0).with_bandwidth(bandwidth);
        prefetcher.on_access(&access, &ctx, &mut l1_sink);
    }

    if !core.l1.demand_lookup(line) {
        core.accounting.l2_demand_accesses += 1;
        functional_beyond_l1(core, llc, bandwidth, prefetch_budget, &access, line, true);
    }

    for request in l1_sink.requests() {
        let prefetch_line = request.line;
        if core.l1.prefetch_lookup(prefetch_line) {
            continue;
        }
        // An L1 prefetch miss trains the L2 prefetcher, as in the timed path.
        let pc = dspatch_types::Pc::new(0);
        let prefetch_access =
            MemoryAccess::new(pc, prefetch_line.to_addr(), dspatch_types::AccessKind::Load)
                .with_core(CoreId(core.id));
        functional_beyond_l1(
            core,
            llc,
            bandwidth,
            prefetch_budget,
            &prefetch_access,
            prefetch_line,
            false,
        );
        core.l1.fill(prefetch_line, true, false);
    }
    core.l1_sink = l1_sink;
}

/// Functional counterpart of `SharedFabric::access_beyond_l1` plus the L2
/// prefetcher training both timed call sites perform: probes L2 → LLC,
/// fills inner levels on the same conditions, updates coverage accounting,
/// then trains the L2 prefetcher and applies its requests as immediate
/// prefetch fills. At most `prefetch_budget` (the prefetch MSHR count)
/// requests are applied per training event — the timed engine drops
/// candidates beyond its in-flight MSHR budget on the floor, so applying
/// a dense pattern in full would warm the caches with lines the detailed
/// run never fetches (and dominate warm-up cost for aggressive patterns).
fn functional_beyond_l1(
    core: &mut CoreState,
    llc: &mut Cache,
    bandwidth: dspatch_types::BandwidthQuartile,
    prefetch_budget: usize,
    access: &MemoryAccess,
    line: LineAddr,
    count_coverage: bool,
) {
    let (l2_hit, l2_was_unused_prefetch) = core.l2.demand_lookup_first_use(line);
    if l2_hit {
        if count_coverage && l2_was_unused_prefetch {
            core.accounting.covered += 1;
            core.accounting.prefetches_used += 1;
        }
    } else {
        let (llc_hit, llc_first_use) = llc.demand_lookup_first_use(line);
        if llc_hit {
            if count_coverage && llc_first_use {
                core.accounting.covered += 1;
                core.accounting.prefetches_used += 1;
            }
        } else if count_coverage {
            core.accounting.uncovered += 1;
        }
        core.l2.fill(line, false, false);
        core.l1.fill(line, false, false);
        if !llc_hit {
            let _ = llc.fill(line, false, false);
        }
    }

    let mut l2_sink = std::mem::take(&mut core.l2_sink);
    l2_sink.clear();
    {
        let ctx = PrefetchContext::at_cycle(0)
            .with_cache_hit(l2_hit)
            .with_bandwidth(bandwidth);
        core.l2_prefetcher.on_access(access, &ctx, &mut l2_sink);
    }
    let mut applied = 0usize;
    for request in l2_sink.requests() {
        if applied >= prefetch_budget {
            break;
        }
        if core.l2.prefetch_lookup(request.line) {
            continue;
        }
        applied += 1;
        core.accounting.prefetches_issued += 1;
        let _ = llc.fill(request.line, true, request.low_priority);
        if request.fill_level != FillLevel::Llc {
            core.l2.fill(request.line, true, request.low_priority);
        }
    }
    core.l2_sink = l2_sink;
}

/// Steps one core for one cycle against `fab`: retire, then allocate,
/// issuing demand accesses and prefetches through the fabric. Both engines
/// call exactly this function, so cores evolve identically under either.
pub(crate) fn step_core_generic<F: Fabric>(
    core: &mut CoreState,
    fab: &mut F,
    config: &SystemConfig,
    cycle: u64,
) {
    let width = config.core.width;
    let rob_entries = config.core.rob_entries;
    let load_buffer = config.core.load_buffer_entries;

    // Retire completed instructions from the ROB head (in order, up to
    // `width` per cycle; compressed runs retire count-wise).
    {
        if core.finished {
            return;
        }
        let mut retired = 0;
        while retired < width {
            match core.rob.front_mut() {
                Some(entry) if entry.completion <= cycle => {
                    let take = (width - retired).min(entry.count as usize);
                    entry.count -= take as u32;
                    core.rob_len -= take;
                    retired += take;
                    if entry.count == 0 {
                        core.rob.pop_front();
                    }
                }
                _ => break,
            }
        }
        core.drain_load_completions(cycle);
        if (core.pending.is_none() || core.record_budget == 0) && core.rob_len == 0 {
            core.finished = true;
            core.finish_cycle = cycle;
            return;
        }
    }

    // Allocate new instructions.
    let mut allocated = 0;
    while allocated < width {
        if core.rob_len >= rob_entries || core.pending.is_none() || core.record_budget == 0 {
            break;
        }
        if core.gap_remaining > 0 {
            // Batch every gap instruction this cycle can take: they all
            // complete next cycle, so they form (or extend) one ROB run.
            let take = (width - allocated)
                .min(core.gap_remaining as usize)
                .min(rob_entries - core.rob_len);
            core.rob_push(cycle + 1, take as u32);
            core.gap_remaining -= take as u32;
            core.instructions += take as u64;
            allocated += take;
            continue;
        }
        if core.load_completions.len() >= load_buffer {
            break;
        }
        let record = core.pending.expect("pending checked above");
        // A dependent (pointer-chasing) access cannot start before the
        // previous memory access has produced its value.
        let issue_cycle = if record.dependent {
            cycle.max(core.last_memory_completion)
        } else {
            cycle
        };
        let completion = demand_access_generic(core, fab, config, &record, issue_cycle);
        core.last_memory_completion = completion;
        core.rob_push(completion, 1);
        core.load_completions.push(Reverse(completion));
        core.instructions += 1;
        core.records_consumed += 1;
        core.record_budget -= 1;
        core.pending = core.source.next_record();
        core.gap_remaining = core.pending.map_or(0, |r| r.gap);
        allocated += 1;
    }
}

/// Performs one demand access through the hierarchy and returns its
/// completion cycle.
pub(crate) fn demand_access_generic<F: Fabric>(
    core: &mut CoreState,
    fab: &mut F,
    config: &SystemConfig,
    record: &TraceRecord,
    cycle: u64,
) -> u64 {
    let line = record.addr.line();
    let l1_latency = config.l1.latency;
    let bandwidth = fab.quartile();
    let access = MemoryAccess::new(record.pc, record.addr, record.kind).with_core(CoreId(core.id));

    // L1 prefetcher observes every demand access at the L1. The sink is
    // taken out of the core for the duration of the call (a pointer swap,
    // not an allocation) so the borrow checker allows issuing through
    // `&mut core` while iterating it.
    let mut l1_sink = std::mem::take(&mut core.l1_sink);
    l1_sink.clear();
    if let Some(prefetcher) = core.l1_prefetcher.as_mut() {
        let ctx = PrefetchContext::at_cycle(cycle).with_bandwidth(bandwidth);
        prefetcher.on_access(&access, &ctx, &mut l1_sink);
    }

    // L1 probe.
    let l1_hit = core.l1.demand_lookup(line);
    let completion = if l1_hit {
        cycle + l1_latency
    } else {
        core.accounting.l2_demand_accesses += 1;
        let (latency, l2_hit) = fab.access_beyond_l1(core, line, cycle, true);
        // Train the L2 prefetcher on this L1 miss and issue its requests.
        let mut l2_sink = std::mem::take(&mut core.l2_sink);
        l2_sink.clear();
        {
            let ctx = PrefetchContext::at_cycle(cycle)
                .with_cache_hit(l2_hit)
                .with_bandwidth(bandwidth);
            core.l2_prefetcher.on_access(&access, &ctx, &mut l2_sink);
        }
        for request in l2_sink.requests() {
            if !fab.issue_l2_prefetch(core, request, cycle) {
                break;
            }
        }
        core.l2_sink = l2_sink;
        cycle + l1_latency + latency
    };

    // L1 prefetcher requests are handled after the demand so they never
    // shorten the triggering access itself.
    for request in l1_sink.requests() {
        issue_l1_prefetch_generic(core, fab, request, cycle);
    }
    core.l1_sink = l1_sink;
    completion
}

/// Issues one request from the L1 stride prefetcher. L1 prefetch misses
/// also train the L2 prefetcher, matching the paper's methodology.
fn issue_l1_prefetch_generic<F: Fabric>(
    core: &mut CoreState,
    fab: &mut F,
    request: &PrefetchRequest,
    cycle: u64,
) {
    let line = request.line;
    if core.l1.prefetch_lookup(line) {
        return;
    }
    // The L1 prefetch misses the L1: it becomes an L2 access that also
    // trains the L2 prefetcher (as a prefetch-miss training event).
    let bandwidth = fab.quartile();
    let pc = dspatch_types::Pc::new(0);
    let access = MemoryAccess::new(pc, line.to_addr(), dspatch_types::AccessKind::Load)
        .with_core(CoreId(core.id));
    let (_, l2_hit) = fab.access_beyond_l1(core, line, cycle, false);
    // `demand_access_generic` has already put the L2 sink back before
    // iterating the L1 requests, so taking it again here never aliases.
    let mut l2_sink = std::mem::take(&mut core.l2_sink);
    l2_sink.clear();
    {
        let ctx = PrefetchContext::at_cycle(cycle)
            .with_cache_hit(l2_hit)
            .with_bandwidth(bandwidth);
        core.l2_prefetcher.on_access(&access, &ctx, &mut l2_sink);
    }
    for request in l2_sink.requests() {
        if !fab.issue_l2_prefetch(core, request, cycle) {
            break;
        }
    }
    core.l2_sink = l2_sink;
    // Fill the line into the L1 as a prefetch.
    core.l1.fill(line, true, false);
}

impl Fabric for SharedFabric {
    fn quartile(&self) -> dspatch_types::BandwidthQuartile {
        self.dram.bandwidth_quartile()
    }

    /// Probes L2, LLC, the in-flight fills and DRAM for a demand access that
    /// already missed the L1. Returns `(latency beyond the L1 probe, l2_hit)`
    /// and performs the fills/accounting.
    fn access_beyond_l1(
        &mut self,
        core: &mut CoreState,
        line: LineAddr,
        cycle: u64,
        count_coverage: bool,
    ) -> (u64, bool) {
        let l2_latency = self.l2_latency;
        let llc_latency = self.llc_latency;

        // L2 probe.
        let (l2_hit, l2_was_unused_prefetch) = core.l2.demand_lookup_first_use(line);
        if l2_hit {
            if count_coverage && l2_was_unused_prefetch {
                core.accounting.covered += 1;
                core.accounting.prefetches_used += 1;
            }
            return (l2_latency, true);
        }

        // LLC probe.
        let (llc_hit, llc_first_use) = self.llc.demand_lookup_first_use(line);
        if llc_hit {
            if count_coverage && llc_first_use {
                core.accounting.covered += 1;
                core.accounting.prefetches_used += 1;
            }
            // Fill the inner levels (demand fill).
            core.l2.fill(line, false, false);
            core.l1.fill(line, false, false);
            self.pollution.observe_demand(line, false);
            return (l2_latency + llc_latency, false);
        }

        // In-flight fill (an earlier prefetch or demand to the same line) or
        // DRAM access — resolved with a single hash probe.
        let issue_cycle = cycle + l2_latency + llc_latency + DRAM_REQUEST_OVERHEAD;
        match self.pending.slot(line.as_u64()) {
            Slot::Occupied(fill) => {
                // A demand hitting an in-flight prefetch promotes it to
                // demand priority (as an MSHR hit would): re-issue the
                // request with demand priority and take whichever data
                // return is earlier.
                let was_prefetch = fill.is_prefetch && !fill.used_by_demand;
                fill.used_by_demand = true;
                fill.fill_l1 = true;
                fill.fill_l2 = true;
                fill.core = core.id;
                let old_ready = fill.ready;
                let promoted_ready = if was_prefetch && old_ready > issue_cycle {
                    let reissued = self.dram.access(line, issue_cycle, false);
                    fill.ready = fill.ready.min(reissued);
                    self.ready_queue.push(fill.ready, line.as_u64());
                    fill.ready
                } else {
                    old_ready
                };
                if count_coverage && was_prefetch {
                    core.accounting.covered += 1;
                    core.accounting.prefetches_used += 1;
                }
                self.pollution.observe_demand(line, false);
                let wait = promoted_ready.saturating_sub(cycle).max(1);
                (l2_latency + llc_latency + wait, false)
            }
            Slot::Vacant(vacant) => {
                // DRAM access.
                if count_coverage {
                    core.accounting.uncovered += 1;
                }
                self.pollution.observe_demand(line, true);
                let ready = self.dram.access(line, issue_cycle, false);
                vacant.insert(PendingFill {
                    ready,
                    core: core.id,
                    issuer: core.id,
                    is_prefetch: false,
                    fill_l1: true,
                    fill_l2: true,
                    low_priority: false,
                    used_by_demand: true,
                });
                self.ready_queue.push(ready, line.as_u64());
                (
                    l2_latency
                        + llc_latency
                        + DRAM_REQUEST_OVERHEAD
                        + ready.saturating_sub(issue_cycle),
                    false,
                )
            }
        }
    }

    /// Issues one request from the L2 prefetcher. Returns `false` when the
    /// core's prefetch MSHR budget is exhausted: the budget only grows
    /// within one access's issue loop, so the caller can stop iterating the
    /// remaining candidates — a full prefetch queue drops them on the
    /// floor, as the hardware's would.
    fn issue_l2_prefetch(
        &mut self,
        core: &mut CoreState,
        request: &PrefetchRequest,
        cycle: u64,
    ) -> bool {
        if core.inflight_prefetches >= self.prefetch_mshrs {
            return false;
        }
        let line = request.line;
        let key = line.as_u64();
        let fill_l2 = request.fill_level != FillLevel::Llc;
        if core.l2.prefetch_lookup(line) {
            return true; // already resident where it would be filled
        }
        // One hash probe decides in-flight filtering and books the fill.
        let Slot::Vacant(vacant) = self.pending.slot(key) else {
            return true;
        };
        core.accounting.prefetches_issued += 1;
        let ready = if self.llc.prefetch_lookup(line) {
            // The line is on-die already: pull it into the L2 without DRAM
            // traffic; model it as arriving after an LLC round trip.
            cycle + self.llc_latency
        } else {
            self.dram.access(line, cycle + DRAM_REQUEST_OVERHEAD, true)
        };
        vacant.insert(PendingFill {
            ready,
            core: core.id,
            issuer: core.id,
            is_prefetch: true,
            fill_l1: false,
            fill_l2,
            low_priority: request.low_priority,
            used_by_demand: false,
        });
        core.inflight_prefetches += 1;
        self.ready_queue.push(ready, key);
        true
    }
}

impl std::fmt::Debug for Machine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Machine")
            .field("cycle", &self.cycle)
            .field("cores", &self.cores.len())
            .field("pending_fills", &self.fab.pending.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DramSpeedGrade;
    use dspatch_prefetchers::{StreamConfig, StreamPrefetcher};
    use dspatch_trace::{PatternGenerator, SpatialPatternGen, StreamGen, Trace};
    use dspatch_types::NullPrefetcher;

    fn stream_trace(len: usize, seed: u64) -> Trace {
        // A gap of ~50 non-memory instructions per access keeps the demand
        // stream below the DRAM bandwidth ceiling, so latency (and therefore
        // prefetching) is what limits performance.
        Trace::new(
            format!("stream-{seed}"),
            StreamGen {
                streams: 2,
                gap: 50,
                store_percent: 10,
            }
            .generate_records(seed, len),
        )
    }

    fn run_single(source: impl IntoTraceSource, prefetcher: impl Into<AnyPrefetcher>) -> SimResult {
        SimulationBuilder::new(SystemConfig::single_thread())
            .with_core(source, prefetcher)
            .run()
    }

    #[test]
    fn simulation_terminates_and_counts_instructions() {
        let trace = stream_trace(2_000, 1);
        let expected_instructions = trace.instruction_count();
        let result = run_single(trace, NullPrefetcher::new());
        assert_eq!(result.cores.len(), 1);
        assert_eq!(result.cores[0].instructions, expected_instructions);
        assert!(result.cores[0].ipc() > 0.0);
        assert!(result.cycles > 0);
    }

    #[test]
    fn prefetching_a_stream_improves_ipc() {
        // Disable the L1 stride prefetcher so the L2 prefetcher's effect is
        // isolated (a pure unit-stride stream is otherwise fully covered at
        // the L1 already).
        let mut config = SystemConfig::single_thread();
        config.l1_stride_prefetcher = false;
        let run = |prefetcher: AnyPrefetcher| {
            SimulationBuilder::new(config.clone())
                .with_core(stream_trace(4_000, 2), prefetcher)
                .run()
        };
        let baseline = run(NullPrefetcher::new().into());
        let prefetched = run(StreamPrefetcher::new(StreamConfig::default()).into());
        let speedup = prefetched.speedup_over(&baseline);
        assert!(
            speedup > 1.10,
            "an aggressive streamer must speed up a streaming trace, got {speedup:.3}"
        );
    }

    #[test]
    fn dependent_chains_are_slower_than_independent_streams() {
        use dspatch_trace::PointerChaseGen;
        let chase = Trace::new(
            "chase",
            PointerChaseGen {
                nodes: 1 << 15,
                node_bytes: 192,
                gap: 10,
            }
            .generate_records(9, 2_000),
        );
        let stream = Trace::new(
            "stream",
            StreamGen {
                streams: 1,
                gap: 10,
                store_percent: 0,
            }
            .generate_records(9, 2_000),
        );
        let chase_result = run_single(chase, NullPrefetcher::new());
        let stream_result = run_single(stream, NullPrefetcher::new());
        assert!(
            chase_result.cores[0].ipc() < stream_result.cores[0].ipc() * 0.6,
            "serialized pointer chasing must be much slower (chase {:.3} vs stream {:.3})",
            chase_result.cores[0].ipc(),
            stream_result.cores[0].ipc()
        );
    }

    #[test]
    fn coverage_accounting_reflects_prefetch_hits() {
        let result = run_single(
            stream_trace(4_000, 3),
            StreamPrefetcher::new(StreamConfig::default()),
        );
        let acc = result.total_accounting();
        assert!(acc.prefetches_issued > 0);
        assert!(
            acc.covered > 0,
            "stream prefetching must cover some L2 accesses"
        );
        assert!(acc.coverage() > 0.1);
        assert!(acc.covered + acc.uncovered <= acc.l2_demand_accesses);
    }

    #[test]
    fn null_prefetcher_has_zero_prefetch_traffic() {
        let result = run_single(stream_trace(2_000, 4), NullPrefetcher::new());
        let acc = result.total_accounting();
        assert_eq!(acc.prefetches_issued, 0);
        assert_eq!(acc.covered, 0);
        assert_eq!(result.dram.prefetch_accesses, 0);
    }

    #[test]
    fn dram_traffic_increases_with_prefetching() {
        let baseline = run_single(stream_trace(3_000, 5), NullPrefetcher::new());
        let prefetched = run_single(
            stream_trace(3_000, 5),
            StreamPrefetcher::new(StreamConfig {
                degree: 8,
                ..StreamConfig::default()
            }),
        );
        assert!(prefetched.dram.cas_commands >= baseline.dram.cas_commands);
        assert!(prefetched.dram.prefetch_accesses > 0);
    }

    #[test]
    fn multi_core_simulation_shares_llc_and_dram() {
        let config = SystemConfig::multi_programmed();
        let mut builder = SimulationBuilder::new(config);
        for seed in 0..4u64 {
            builder = builder.with_core(stream_trace(1_500, 10 + seed), NullPrefetcher::new());
        }
        let result = builder.run();
        assert_eq!(result.cores.len(), 4);
        for core in &result.cores {
            assert!(core.instructions > 0);
            assert!(core.ipc() > 0.0);
        }
        assert!(result.dram.cas_commands > 0);
    }

    #[test]
    fn sharing_dram_slows_cores_down() {
        // The same workload on a 4-core system with shared channels should
        // achieve lower per-core IPC than alone on the single-thread system
        // with a whole channel to itself... unless it is cache-resident, so
        // use a spatially sparse trace that misses a lot.
        let sparse = |seed| {
            Trace::new(
                "sparse",
                SpatialPatternGen {
                    layouts: 8,
                    density: 12,
                    reorder_window: 4,
                    working_set_pages: 1 << 18,
                    gap: 2,
                }
                .generate_records(seed, 3_000),
            )
        };
        let alone = SimulationBuilder::new(SystemConfig::single_thread())
            .with_core(sparse(1), NullPrefetcher::new())
            .run();
        let mut builder = SimulationBuilder::new(SystemConfig::multi_programmed());
        for seed in 1..5u64 {
            builder = builder.with_core(sparse(seed), NullPrefetcher::new());
        }
        let shared = builder.run();
        assert!(
            shared.cores[0].ipc() <= alone.cores[0].ipc() * 1.05,
            "sharing memory bandwidth should not speed a core up (shared {:.3} vs alone {:.3})",
            shared.cores[0].ipc(),
            alone.cores[0].ipc()
        );
    }

    #[test]
    fn bandwidth_utilization_responds_to_memory_intensity() {
        let light = run_single(
            Trace::new(
                "light",
                StreamGen {
                    streams: 1,
                    gap: 60,
                    store_percent: 0,
                }
                .generate_records(7, 1_000),
            ),
            NullPrefetcher::new(),
        );
        let heavy = run_single(
            Trace::new(
                "heavy",
                StreamGen {
                    streams: 4,
                    gap: 0,
                    store_percent: 0,
                }
                .generate_records(7, 6_000),
            ),
            StreamPrefetcher::new(StreamConfig {
                degree: 8,
                ..StreamConfig::default()
            }),
        );
        assert!(heavy.dram.average_utilization() > light.dram.average_utilization());
    }

    #[test]
    fn pollution_tracking_classifies_streamer_victims() {
        // A small LLC plus an aggressive streamer on a sparse trace causes
        // prefetch fills to evict lines; most victims should be dead.
        let config = SystemConfig::single_thread().with_llc_capacity(256 * 1024);
        let trace = Trace::new(
            "sparse",
            SpatialPatternGen {
                layouts: 6,
                density: 10,
                reorder_window: 3,
                working_set_pages: 1 << 18,
                gap: 4,
            }
            .generate_records(11, 8_000),
        );
        let result = SimulationBuilder::new(config)
            .with_core(
                trace,
                StreamPrefetcher::new(StreamConfig {
                    degree: 6,
                    ..StreamConfig::default()
                }),
            )
            .run();
        assert!(
            result.pollution.total() > 0,
            "prefetch fills must evict something"
        );
        let (no_reuse, _, bad) = result.pollution.fractions();
        assert!(
            no_reuse > bad,
            "dead victims should dominate true pollution"
        );
    }

    #[test]
    fn l1_stride_prefetcher_reduces_l1_misses_on_strided_code() {
        let trace = || stream_trace(3_000, 21);
        let mut with_cfg = SystemConfig::single_thread();
        with_cfg.l1_stride_prefetcher = true;
        let mut without_cfg = SystemConfig::single_thread();
        without_cfg.l1_stride_prefetcher = false;
        let with_stride = SimulationBuilder::new(with_cfg)
            .with_core(trace(), NullPrefetcher::new())
            .run();
        let without_stride = SimulationBuilder::new(without_cfg)
            .with_core(trace(), NullPrefetcher::new())
            .run();
        assert!(
            with_stride.cores[0].l1.miss_ratio() < without_stride.cores[0].l1.miss_ratio(),
            "the L1 stride prefetcher must reduce L1 demand misses"
        );
    }

    #[test]
    fn faster_dram_does_not_hurt() {
        let slow = SimulationBuilder::new(
            SystemConfig::single_thread().with_dram(1, DramSpeedGrade::Ddr4_1600),
        )
        .with_core(stream_trace(3_000, 31), NullPrefetcher::new())
        .run();
        let fast = SimulationBuilder::new(
            SystemConfig::single_thread().with_dram(2, DramSpeedGrade::Ddr4_2400),
        )
        .with_core(stream_trace(3_000, 31), NullPrefetcher::new())
        .run();
        assert!(fast.cores[0].ipc() >= slow.cores[0].ipc() * 0.99);
    }

    #[test]
    fn streaming_and_materialized_paths_are_bit_identical() {
        use dspatch_trace::{GeneratorSpec, SynthSource};
        let spec = GeneratorSpec::Spatial(SpatialPatternGen {
            layouts: 8,
            density: 12,
            reorder_window: 4,
            working_set_pages: 1 << 16,
            gap: 20,
        });
        let materialized = run_single(
            Trace::new("golden", spec.generate_records(13, 4_000)),
            StreamPrefetcher::new(StreamConfig::default()),
        );
        let streamed = run_single(
            SynthSource::new("golden", spec, 13, 4_000).into_trace_source(),
            StreamPrefetcher::new(StreamConfig::default()),
        );
        assert_eq!(materialized, streamed);
    }

    #[test]
    fn results_echo_the_effective_cache_geometry() {
        // A non-power-of-two LLC rounds its set count up; the result must
        // say so rather than let reports quote the requested capacity.
        let config = SystemConfig::single_thread().with_llc_capacity(3 * 1024 * 1024);
        let result = SimulationBuilder::new(config)
            .with_core(stream_trace(500, 77), NullPrefetcher::new())
            .run();
        assert_eq!(result.cache_geometry.len(), 3);
        let llc = &result.cache_geometry[2];
        assert_eq!(llc.name, "LLC");
        assert_eq!(llc.requested_bytes, 3 * 1024 * 1024);
        assert!(llc.rounded);
        assert_eq!(llc.effective_bytes, 4 * 1024 * 1024);
        let l1 = &result.cache_geometry[0];
        assert!(!l1.rounded, "the paper's L1 is a power of two");
    }

    #[test]
    fn interval_run_issues_exactly_the_budgeted_records() {
        let mut machine = SimulationBuilder::new(SystemConfig::single_thread())
            .with_core(stream_trace(4_000, 91), NullPrefetcher::new())
            .into_machine();
        assert_eq!(machine.run_functional(1_000), 1_000);
        let result = machine.run_interval(500);
        let l1 = &result.cores[0].l1;
        assert_eq!(
            l1.demand_hits + l1.demand_misses,
            500,
            "an interval must probe the L1 exactly once per budgeted record"
        );
        assert!(result.cycles > 0);
        // The machine is back at a functional boundary and can keep going.
        assert_eq!(machine.run_functional(100), 100);
    }

    #[test]
    fn checkpoint_restore_is_bit_identical() {
        let machine = || {
            SimulationBuilder::new(SystemConfig::single_thread())
                .with_core(
                    stream_trace(6_000, 42),
                    StreamPrefetcher::new(StreamConfig::default()),
                )
                .into_machine()
        };
        let mut original = machine();
        original.run_functional(2_000);
        let state = original.capture().unwrap();
        let uninterrupted = original.run_interval(1_000);

        let mut restored = machine();
        restored.restore(&state).unwrap();
        let resumed = restored.run_interval(1_000);
        assert_eq!(uninterrupted, resumed);

        // A disk round trip of the checkpoint changes nothing.
        let reloaded =
            crate::snapshot::MachineState::from_bytes(state.as_bytes().to_vec()).unwrap();
        let mut from_disk = machine();
        from_disk.restore(&reloaded).unwrap();
        assert_eq!(from_disk.run_interval(1_000), uninterrupted);
    }

    #[test]
    fn neutral_warmup_checkpoint_forks_across_prefetchers() {
        // Warm with the null prefetcher, restore into a streamer column:
        // caches arrive warm, the predictor starts fresh and still issues.
        let mut warm = SimulationBuilder::new(SystemConfig::single_thread())
            .with_core(stream_trace(6_000, 7), NullPrefetcher::new())
            .into_machine();
        warm.run_functional(3_000);
        let state = warm.capture().unwrap();

        let mut column = SimulationBuilder::new(SystemConfig::single_thread())
            .with_core(
                stream_trace(6_000, 7),
                StreamPrefetcher::new(StreamConfig::default()),
            )
            .into_machine();
        column.restore(&state).unwrap();
        let result = column.run_interval(1_000);
        assert!(result.cores[0].accounting.prefetches_issued > 0);
        let warm_l1 = result.cores[0].l1;
        assert!(
            warm_l1.demand_hits > 0,
            "warmed caches must serve some interval hits"
        );
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn empty_simulation_is_rejected() {
        let _ = SimulationBuilder::new(SystemConfig::single_thread()).run();
    }

    #[test]
    #[should_panic(expected = "more cores supplied")]
    fn too_many_cores_are_rejected() {
        let _ = SimulationBuilder::new(SystemConfig::single_thread())
            .with_core(stream_trace(10, 1), NullPrefetcher::new())
            .with_core(stream_trace(10, 2), NullPrefetcher::new())
            .run();
    }
}
