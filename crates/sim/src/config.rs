//! Simulation parameters (paper, Table 2) and the DRAM speed grid used by
//! the bandwidth-scaling experiments (Figures 1, 6 and 15).

use crate::cache::CacheConfig;
use serde::{Deserialize, Serialize};

/// Core microarchitecture parameters (Skylake-class, Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoreConfig {
    /// Core clock in MHz (paper: 4 GHz).
    pub clock_mhz: u64,
    /// Reorder-buffer entries (paper: 224).
    pub rob_entries: usize,
    /// Allocation/retire width (paper: 4-wide).
    pub width: usize,
    /// Load-buffer entries bounding outstanding loads (paper: 80).
    pub load_buffer_entries: usize,
}

impl Default for CoreConfig {
    fn default() -> Self {
        Self {
            clock_mhz: 4000,
            rob_entries: 224,
            width: 4,
            load_buffer_entries: 80,
        }
    }
}

/// DDR4 speed grades evaluated by the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DramSpeedGrade {
    /// DDR4-1600 (12.5 GB/s per channel).
    Ddr4_1600,
    /// DDR4-2133 (17 GB/s per channel) — the paper's baseline.
    Ddr4_2133,
    /// DDR4-2400 (19.2 GB/s per channel).
    Ddr4_2400,
}

impl DramSpeedGrade {
    /// All grades, slowest first.
    pub const ALL: [DramSpeedGrade; 3] = [
        DramSpeedGrade::Ddr4_1600,
        DramSpeedGrade::Ddr4_2133,
        DramSpeedGrade::Ddr4_2400,
    ];

    /// Data rate in mega-transfers per second.
    pub fn data_rate_mts(self) -> u64 {
        match self {
            DramSpeedGrade::Ddr4_1600 => 1600,
            DramSpeedGrade::Ddr4_2133 => 2133,
            DramSpeedGrade::Ddr4_2400 => 2400,
        }
    }

    /// Short label ("1600", "2133", "2400").
    pub fn label(self) -> &'static str {
        match self {
            DramSpeedGrade::Ddr4_1600 => "1600",
            DramSpeedGrade::Ddr4_2133 => "2133",
            DramSpeedGrade::Ddr4_2400 => "2400",
        }
    }
}

/// DRAM organization and timing (paper, Table 2: DDR4, 2 ranks/channel,
/// 8 banks/rank, 64-bit bus, 2 KB row buffer, tCL=tRCD=tRP=15 ns,
/// tRAS=39 ns).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DramConfig {
    /// Number of independent channels.
    pub channels: usize,
    /// Ranks per channel.
    pub ranks_per_channel: usize,
    /// Banks per rank.
    pub banks_per_rank: usize,
    /// Data-bus width per channel in bytes (64-bit = 8 bytes).
    pub bus_bytes: usize,
    /// Row-buffer size in bytes.
    pub row_buffer_bytes: usize,
    /// Speed grade (data rate).
    pub speed: DramSpeedGrade,
    /// Column access latency in nanoseconds.
    pub t_cl_ns: f64,
    /// RAS-to-CAS delay in nanoseconds.
    pub t_rcd_ns: f64,
    /// Row precharge latency in nanoseconds.
    pub t_rp_ns: f64,
    /// Row active time in nanoseconds.
    pub t_ras_ns: f64,
}

impl Default for DramConfig {
    fn default() -> Self {
        Self::with_speed(1, DramSpeedGrade::Ddr4_2133)
    }
}

impl DramConfig {
    /// Builds a configuration with `channels` channels of the given grade
    /// and the paper's Table 2 timings.
    pub fn with_speed(channels: usize, speed: DramSpeedGrade) -> Self {
        Self {
            channels,
            ranks_per_channel: 2,
            banks_per_rank: 8,
            bus_bytes: 8,
            row_buffer_bytes: 2048,
            speed,
            t_cl_ns: 15.0,
            t_rcd_ns: 15.0,
            t_rp_ns: 15.0,
            t_ras_ns: 39.0,
        }
    }

    /// Total banks per channel.
    pub fn banks_per_channel(&self) -> usize {
        self.ranks_per_channel * self.banks_per_rank
    }

    /// Peak bandwidth in gigabytes per second across all channels.
    pub fn peak_bandwidth_gbps(&self) -> f64 {
        self.channels as f64 * self.speed.data_rate_mts() as f64 * self.bus_bytes as f64 / 1000.0
    }

    /// Row-cycle time tRC = tRAS + tRP, in nanoseconds. The bandwidth
    /// tracker's window is 4×tRC (paper, Section 3.2).
    pub fn t_rc_ns(&self) -> f64 {
        self.t_ras_ns + self.t_rp_ns
    }

    /// Minimum time between two 64 B transfers on one channel, in
    /// nanoseconds (8 bus transfers per cache line).
    pub fn transfer_time_ns(&self) -> f64 {
        let transfers = 64.0 / self.bus_bytes as f64;
        transfers / (self.speed.data_rate_mts() as f64 / 1000.0)
    }

    /// A short descriptive label such as "1ch-2133".
    pub fn label(&self) -> String {
        format!("{}ch-{}", self.channels, self.speed.label())
    }
}

/// Full system configuration (Table 2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemConfig {
    /// Core parameters.
    pub core: CoreConfig,
    /// Number of cores sharing the LLC and DRAM.
    pub cores: usize,
    /// Private L1 data cache (32 KB, 8-way, 5-cycle round trip).
    pub l1: CacheConfig,
    /// Private L2 cache (256 KB, 8-way, 8-cycle round trip).
    pub l2: CacheConfig,
    /// Shared LLC (2 MB/core single-thread, 8 MB shared for 4 cores,
    /// 16-way, 30-cycle round trip).
    pub llc: CacheConfig,
    /// DRAM configuration.
    pub dram: DramConfig,
    /// Whether the baseline PC-stride prefetcher runs at the L1.
    pub l1_stride_prefetcher: bool,
    /// Per-core budget of in-flight L2 prefetch fills (the prefetch-queue /
    /// MSHR capacity of ChampSim-class simulators; Table 2 machines use 16).
    /// Prefetch candidates beyond the budget are dropped exactly as a full
    /// hardware prefetch queue would drop them; demands are never dropped.
    /// This also bounds the simulator's in-flight fill table, which is what
    /// keeps the prefetcher-path wall-clock cost flat under DRAM saturation
    /// (an unbounded backlog previously grew to tens of thousands of
    /// queued fills).
    pub prefetch_mshrs: usize,
    /// Whether the machine may fast-forward over provably idle /
    /// closed-form cycles. On by default; disabling forces the reference
    /// cycle-by-cycle loop, which produces **bit-identical results** (a
    /// property test asserts this) at a large wall-clock cost. Exists so
    /// the skip machinery's exactness stays falsifiable.
    pub cycle_skipping: bool,
    /// Upper bound on simulated cycles (guards against pathological
    /// configurations; 0 disables the guard).
    pub max_cycles: u64,
    /// Run multi-core simulations on scoped worker threads, one shard per
    /// core, synchronizing at bounded-lag epoch boundaries. The epoch
    /// engine is deterministic and produces identical results for any
    /// worker count (a golden test asserts this); single-core simulations
    /// always use the exact serial loop. Off by default.
    pub parallel_cores: bool,
    /// Worker-thread count for the epoch engine. `0` (the default) picks
    /// `min(available_parallelism, cores)`; any other value is clamped to
    /// the shard count. Ignored unless `parallel_cores` is set.
    pub parallel_workers: usize,
    /// Epoch length in core cycles for the sharded engine. `0` (the
    /// default) uses the bandwidth-tracker window (4×tRC), the cadence at
    /// which the hardware itself broadcasts shared DRAM state. Ignored
    /// unless the simulation has more than one core.
    pub parallel_epoch_cycles: u64,
}

impl SystemConfig {
    /// The paper's single-thread configuration: one core, 2 MB LLC, one
    /// DDR4-2133 channel.
    pub fn single_thread() -> Self {
        Self {
            core: CoreConfig::default(),
            cores: 1,
            l1: CacheConfig::new("L1D", 32 * 1024, 8, 5, 16),
            l2: CacheConfig::new("L2", 256 * 1024, 8, 8, 32),
            llc: CacheConfig::new("LLC", 2 * 1024 * 1024, 16, 30, 32),
            dram: DramConfig::with_speed(1, DramSpeedGrade::Ddr4_2133),
            l1_stride_prefetcher: true,
            prefetch_mshrs: 16,
            cycle_skipping: true,
            max_cycles: 2_000_000_000,
            parallel_cores: false,
            parallel_workers: 0,
            parallel_epoch_cycles: 0,
        }
    }

    /// The number of worker threads a simulation with this config will
    /// occupy: 1 unless it is a parallel multi-core run. Campaign executors
    /// use this to keep `outer_jobs × intra_sim_workers` within one thread
    /// budget instead of multiplying pools.
    pub fn effective_workers(&self) -> usize {
        if !self.parallel_cores || self.cores < 2 {
            return 1;
        }
        let auto = std::thread::available_parallelism().map_or(1, |n| n.get());
        let requested = if self.parallel_workers == 0 {
            auto
        } else {
            self.parallel_workers
        };
        requested.clamp(1, self.cores)
    }

    /// The paper's multi-programmed configuration: four cores, a shared
    /// 8 MB LLC and two DDR4-2133 channels.
    pub fn multi_programmed() -> Self {
        Self {
            cores: 4,
            llc: CacheConfig::new("LLC", 8 * 1024 * 1024, 16, 30, 128),
            dram: DramConfig::with_speed(2, DramSpeedGrade::Ddr4_2133),
            ..Self::single_thread()
        }
    }

    /// Replaces the DRAM configuration (used for the bandwidth sweeps).
    pub fn with_dram(mut self, channels: usize, speed: DramSpeedGrade) -> Self {
        self.dram = DramConfig::with_speed(channels, speed);
        self
    }

    /// Replaces the LLC capacity, keeping associativity and latency (used by
    /// the appendix pollution study, Figure 20).
    pub fn with_llc_capacity(mut self, bytes: usize) -> Self {
        let ways = self.llc.ways;
        let latency = self.llc.latency;
        let mshrs = self.llc.mshrs;
        self.llc = CacheConfig::new("LLC", bytes, ways, latency, mshrs);
        self
    }

    /// The epoch length the sharded engine uses when none is set
    /// explicitly: the bandwidth-tracker window (4×tRC in core cycles), the
    /// cadence at which the hardware itself broadcasts shared DRAM state.
    /// Mirrors `BandwidthTracker::window_cycles` exactly.
    pub fn default_epoch_cycles(&self) -> u64 {
        let cycles_per_ns = self.core.clock_mhz as f64 / 1000.0;
        (4.0 * self.dram.t_rc_ns() * cycles_per_ns).round().max(1.0) as u64
    }

    /// Resolves the `0 = auto` parallel knobs into the explicit values the
    /// engine would pick: `parallel_workers` via [`Self::effective_workers`]
    /// and `parallel_epoch_cycles` via [`Self::default_epoch_cycles`].
    /// Engine entry points call this before [`Self::validate`], which
    /// rejects the auto sentinels; configs that are already explicit pass
    /// through unchanged.
    pub fn resolved_parallel(mut self) -> Self {
        if self.parallel_cores && self.cores > 1 {
            if self.parallel_workers == 0 {
                self.parallel_workers = self.effective_workers();
            }
            if self.parallel_epoch_cycles == 0 {
                self.parallel_epoch_cycles = self.default_epoch_cycles();
            }
        }
        self
    }

    /// Validates structural parameters.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid parameter found.
    pub fn validate(&self) -> Result<(), String> {
        if self.cores == 0 {
            return Err("system needs at least one core".to_owned());
        }
        if self.core.width == 0 || self.core.rob_entries == 0 {
            return Err("core width and ROB size must be positive".to_owned());
        }
        if self.dram.channels == 0 {
            return Err("DRAM needs at least one channel".to_owned());
        }
        if self.prefetch_mshrs == 0 {
            return Err("prefetch MSHR budget must be positive".to_owned());
        }
        // The epoch engine treats 0 as "auto" for both parallel knobs, but a
        // validated config must be explicit: campaigns that accept 0 here
        // fail deep inside `epoch.rs` with machine-dependent behavior
        // instead of at spec time. `effective_workers()` and
        // `default_epoch_cycles()` compute the auto values to store.
        if self.parallel_cores && self.cores > 1 {
            if self.parallel_workers == 0 {
                return Err(format!(
                    "parallel_cores with {} cores requires an explicit parallel_workers \
                     (got 0 = auto; use effective_workers() to resolve it first)",
                    self.cores
                ));
            }
            if self.parallel_epoch_cycles == 0 {
                return Err("parallel_cores requires an explicit parallel_epoch_cycles \
                     (got 0 = auto; use default_epoch_cycles() to resolve it first)"
                    .to_owned());
            }
        }
        for cache in [&self.l1, &self.l2, &self.llc] {
            let _ = cache.validate()?;
        }
        Ok(())
    }

    /// The six DRAM configurations of the bandwidth-scaling figures:
    /// single and dual channels of DDR4-1600, 2133 and 2400.
    pub fn bandwidth_sweep() -> Vec<(usize, DramSpeedGrade)> {
        let mut grid = Vec::new();
        for channels in [1usize, 2] {
            for speed in DramSpeedGrade::ALL {
                grid.push((channels, speed));
            }
        }
        grid
    }
}

impl Default for SystemConfig {
    fn default() -> Self {
        Self::single_thread()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_thread_matches_table2() {
        let cfg = SystemConfig::single_thread();
        assert_eq!(cfg.core.rob_entries, 224);
        assert_eq!(cfg.core.width, 4);
        assert_eq!(cfg.core.load_buffer_entries, 80);
        assert_eq!(cfg.l1.size_bytes, 32 * 1024);
        assert_eq!(cfg.l2.size_bytes, 256 * 1024);
        assert_eq!(cfg.llc.size_bytes, 2 * 1024 * 1024);
        assert_eq!(cfg.l1.latency, 5);
        assert_eq!(cfg.l2.latency, 8);
        assert_eq!(cfg.llc.latency, 30);
        assert_eq!(cfg.dram.channels, 1);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn multi_programmed_scales_llc_and_channels() {
        let cfg = SystemConfig::multi_programmed();
        assert_eq!(cfg.cores, 4);
        assert_eq!(cfg.llc.size_bytes, 8 * 1024 * 1024);
        assert_eq!(cfg.dram.channels, 2);
        // Same LLC capacity per core, half the bandwidth per core.
        let st = SystemConfig::single_thread();
        assert_eq!(cfg.llc.size_bytes / cfg.cores, st.llc.size_bytes);
        assert!(
            (cfg.dram.peak_bandwidth_gbps() / cfg.cores as f64) < st.dram.peak_bandwidth_gbps()
        );
    }

    #[test]
    fn peak_bandwidth_matches_paper_figures() {
        let one_1600 = DramConfig::with_speed(1, DramSpeedGrade::Ddr4_1600);
        let one_2133 = DramConfig::with_speed(1, DramSpeedGrade::Ddr4_2133);
        let two_2400 = DramConfig::with_speed(2, DramSpeedGrade::Ddr4_2400);
        assert!((one_1600.peak_bandwidth_gbps() - 12.8).abs() < 0.2);
        assert!((one_2133.peak_bandwidth_gbps() - 17.0).abs() < 0.2);
        assert!((two_2400.peak_bandwidth_gbps() - 38.4).abs() < 0.5);
    }

    #[test]
    fn bandwidth_sweep_has_six_points() {
        let sweep = SystemConfig::bandwidth_sweep();
        assert_eq!(sweep.len(), 6);
        let bandwidths: Vec<f64> = sweep
            .iter()
            .map(|&(ch, sp)| DramConfig::with_speed(ch, sp).peak_bandwidth_gbps())
            .collect();
        assert!(bandwidths.windows(2).any(|w| w[1] > w[0]));
    }

    #[test]
    fn timing_derivations() {
        let dram = DramConfig::default();
        assert!((dram.t_rc_ns() - 54.0).abs() < 1e-9);
        // One 64 B line takes 8 transfers; at 2133 MT/s that is ~3.75 ns.
        assert!((dram.transfer_time_ns() - 3.75).abs() < 0.1);
    }

    #[test]
    fn validation_catches_bad_configs() {
        let mut cfg = SystemConfig::single_thread();
        cfg.cores = 0;
        assert!(cfg.validate().is_err());
        let mut cfg = SystemConfig::single_thread();
        cfg.dram.channels = 0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn validation_rejects_auto_parallel_knobs() {
        // 0 = auto is an engine-level convenience; a validated config must
        // be explicit so campaigns fail at spec time, not deep in epoch.rs.
        let mut cfg = SystemConfig::multi_programmed();
        cfg.parallel_cores = true;
        cfg.parallel_workers = 0;
        cfg.parallel_epoch_cycles = cfg.default_epoch_cycles();
        let err = cfg.validate().expect_err("auto workers must be rejected");
        assert!(err.contains("parallel_workers"), "got: {err}");

        cfg.parallel_workers = 2;
        cfg.parallel_epoch_cycles = 0;
        let err = cfg.validate().expect_err("auto epoch must be rejected");
        assert!(err.contains("parallel_epoch_cycles"), "got: {err}");

        cfg.parallel_epoch_cycles = cfg.default_epoch_cycles();
        assert!(cfg.validate().is_ok());

        // Non-parallel multi-core configs keep 0 = auto (multi_programmed's
        // own defaults must stay valid).
        assert!(SystemConfig::multi_programmed().validate().is_ok());
        // Single-core parallel configs degenerate to the serial loop; the
        // knobs are ignored there and stay unconstrained.
        let mut single = SystemConfig::single_thread();
        single.parallel_cores = true;
        assert!(single.validate().is_ok());
    }

    #[test]
    fn default_epoch_cycles_matches_bandwidth_tracker_window() {
        use crate::dram::BandwidthTracker;
        for speed in DramSpeedGrade::ALL {
            for channels in [1usize, 2] {
                for clock_mhz in [1000u64, 2500, 4000] {
                    let mut cfg = SystemConfig::single_thread().with_dram(channels, speed);
                    cfg.core.clock_mhz = clock_mhz;
                    assert_eq!(
                        cfg.default_epoch_cycles(),
                        BandwidthTracker::new(&cfg.dram, clock_mhz).window_cycles(),
                        "{speed:?} {channels}ch @ {clock_mhz} MHz"
                    );
                }
            }
        }
    }

    #[test]
    fn labels_are_descriptive() {
        assert_eq!(
            DramConfig::with_speed(2, DramSpeedGrade::Ddr4_2400).label(),
            "2ch-2400"
        );
        assert_eq!(DramSpeedGrade::Ddr4_1600.label(), "1600");
    }
}
