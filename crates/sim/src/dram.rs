//! DDR4 timing model and bandwidth-utilization tracking.
//!
//! The model captures the effects prefetching interacts with: per-channel
//! data-bus occupancy (the bandwidth ceiling), per-bank row-buffer hits and
//! misses (latency variation), and the CAS-per-window counter that feeds the
//! 2-bit utilization quartile DSPatch's selection logic consumes (paper,
//! Section 3.2).

use crate::config::DramConfig;
use dspatch_types::snapshot::{SnapshotError, SnapshotState, StateReader, StateWriter};
use dspatch_types::{BandwidthQuartile, LineAddr};
use serde::{Deserialize, Serialize};

/// Statistics accumulated by the DRAM model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct DramStats {
    /// Total column accesses (one per 64 B transfer).
    pub cas_commands: u64,
    /// Accesses that hit an open row.
    pub row_hits: u64,
    /// Accesses that required opening a row (empty or conflicting).
    pub row_misses: u64,
    /// Accesses issued on behalf of prefetches.
    pub prefetch_accesses: u64,
    /// Sum of utilization fractions sampled at each window boundary
    /// (divide by `windows` for the average).
    pub utilization_sum: f64,
    /// Number of completed tracking windows.
    pub windows: u64,
}

impl DramStats {
    /// Average bandwidth utilization over the run, in `[0, 1]`.
    pub fn average_utilization(&self) -> f64 {
        if self.windows == 0 {
            0.0
        } else {
            self.utilization_sum / self.windows as f64
        }
    }

    /// Row-buffer hit rate in `[0, 1]`.
    pub fn row_hit_rate(&self) -> f64 {
        let total = self.row_hits + self.row_misses;
        if total == 0 {
            0.0
        } else {
            self.row_hits as f64 / total as f64
        }
    }
}

/// The CAS-counting bandwidth tracker (paper, Section 3.2): counts column
/// accesses in windows of 4×tRC cycles, halves the counter at each window
/// boundary for hysteresis, and quantizes the result into quartiles of the
/// peak CAS rate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BandwidthTracker {
    window_cycles: u64,
    peak_cas_per_window: f64,
    window_end: u64,
    counter: f64,
    current_window_cas: u64,
    quartile: BandwidthQuartile,
}

impl BandwidthTracker {
    /// Creates a tracker for the given DRAM configuration and core clock.
    pub fn new(config: &DramConfig, core_clock_mhz: u64) -> Self {
        let cycles_per_ns = core_clock_mhz as f64 / 1000.0;
        let window_cycles = (4.0 * config.t_rc_ns() * cycles_per_ns).round().max(1.0) as u64;
        let transfer_cycles = config.transfer_time_ns() * cycles_per_ns;
        let peak_cas_per_window = (window_cycles as f64 / transfer_cycles) * config.channels as f64;
        Self {
            window_cycles,
            peak_cas_per_window,
            window_end: window_cycles,
            counter: 0.0,
            current_window_cas: 0,
            quartile: BandwidthQuartile::Q0,
        }
    }

    /// Records one CAS command at `cycle`.
    pub fn record_cas(&mut self, cycle: u64, stats: &mut DramStats) {
        self.advance(cycle, stats);
        self.current_window_cas += 1;
    }

    /// Advances the window state to `cycle`, closing any windows that have
    /// elapsed, and returns the current quartile.
    ///
    /// A long idle gap (or a cycle-skipped stall) used to cost one loop
    /// iteration per elapsed window — O(gap/window). Idle windows are pure
    /// decay (the counter halves, nothing else changes), so once their
    /// utilization samples stop being observable the remaining `k` windows
    /// collapse into a closed form: the counter is scaled by `2^-k` via
    /// exponent arithmetic and the window/stat counters jump. The closed
    /// form is **bit-exact** against the reference loop (a test drives both
    /// through randomized traffic): halving an f64 only decrements its
    /// exponent while the value stays normal, and the fast path is taken
    /// only when each skipped sample would round away in
    /// `utilization_sum` and quantize to the bottom quartile.
    pub fn advance(&mut self, cycle: u64, stats: &mut DramStats) -> BandwidthQuartile {
        while cycle >= self.window_end {
            // Close one window: fold the count into the hysteresis counter,
            // sample utilization, then halve (paper: "the counter is halved
            // after every window").
            self.counter = self.counter / 2.0 + self.current_window_cas as f64;
            let utilization = (self.counter / (2.0 * self.peak_cas_per_window)).min(1.0);
            self.quartile = BandwidthQuartile::from_fraction(utilization);
            stats.utilization_sum += utilization;
            stats.windows += 1;
            self.current_window_cas = 0;
            self.window_end += self.window_cycles;

            if cycle < self.window_end {
                break;
            }
            let remaining = (cycle - self.window_end) / self.window_cycles + 1;

            // Fully decayed: every remaining window samples exactly 0.0 and
            // reports Q0; only the window bookkeeping advances.
            if self.counter == 0.0 {
                stats.windows += remaining;
                self.quartile = BandwidthQuartile::from_fraction(0.0);
                self.window_end += remaining * self.window_cycles;
                continue;
            }

            // Decaying: the next sample is the largest of the remaining gap
            // (samples shrink monotonically). If it already (a) rounds away
            // when added to the running sum and (b) quantizes to Q0, then so
            // does every later one, and the whole tail is closed-form.
            let next_utilization =
                ((self.counter / 2.0) / (2.0 * self.peak_cas_per_window)).min(1.0);
            let absorbed = stats.utilization_sum + next_utilization == stats.utilization_sum;
            if absorbed
                && BandwidthQuartile::from_fraction(next_utilization) == BandwidthQuartile::Q0
            {
                self.counter = decay_exact(self.counter, remaining);
                self.quartile = BandwidthQuartile::Q0;
                stats.windows += remaining;
                self.window_end += remaining * self.window_cycles;
            }
            // Otherwise close the next window through the reference path.
        }
        self.quartile
    }

    /// The most recently broadcast quartile.
    pub fn quartile(&self) -> BandwidthQuartile {
        self.quartile
    }

    /// The tracking window length in core cycles (4×tRC).
    pub fn window_cycles(&self) -> u64 {
        self.window_cycles
    }
}

/// Halves `value` `k` times, bit-exactly matching `k` sequential `/= 2.0`
/// steps. While the result stays normal, halving is a pure exponent
/// decrement, so the whole run collapses into one subtraction; the subnormal
/// tail (at most ~60 further halvings before reaching zero) falls back to
/// the literal loop because subnormal halving rounds step by step.
fn decay_exact(value: f64, k: u64) -> f64 {
    debug_assert!(value > 0.0);
    let biased_exponent = (value.to_bits() >> 52) & 0x7FF;
    if biased_exponent > k {
        return f64::from_bits(value.to_bits() - (k << 52));
    }
    let mut out = value;
    for _ in 0..k {
        out /= 2.0;
        if out == 0.0 {
            break;
        }
    }
    out
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct Bank {
    open_row: Option<u64>,
    busy_until: u64,
}

#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
struct Channel {
    banks: Vec<Bank>,
    /// Cycle at which the data bus is free considering all traffic.
    data_bus_free: u64,
    /// Cycle at which the data bus is free considering demand traffic only.
    /// Demands are prioritized over prefetches (FR-FCFS with demand-first
    /// arbitration), so they queue only behind other demands; prefetches use
    /// leftover bandwidth and queue behind everything.
    demand_bus_free: u64,
}

/// The DRAM subsystem: address-interleaved channels of banks with row
/// buffers, plus the bandwidth tracker.
///
/// # Example
///
/// ```
/// use dspatch_sim::{Dram, DramStats};
/// use dspatch_sim::config::DramConfig;
/// use dspatch_types::LineAddr;
///
/// let mut dram = Dram::new(DramConfig::default(), 4000);
/// let first = dram.access(LineAddr::new(0), 0, false);
/// let second = dram.access(LineAddr::new(1), 0, false);
/// // The shared channel data bus serializes the two transfers.
/// assert!(second > first);
/// assert_eq!(dram.stats().cas_commands, 2);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dram {
    config: DramConfig,
    channels: Vec<Channel>,
    tracker: BandwidthTracker,
    stats: DramStats,
    /// Composite access latencies converted to core cycles once at
    /// construction — `access` runs on the per-miss hot path and must not
    /// redo the float-multiply-and-round per call. Each composite is the
    /// rounding of the **summed** nanoseconds (tCL, tRCD+tCL,
    /// tRP+tRCD+tCL): rounding the parameters independently and adding the
    /// cycle counts can differ by a cycle from the physical sum at clock
    /// rates where the per-parameter products land on .5 boundaries.
    row_hit_cycles: u64,
    row_open_cycles: u64,
    row_conflict_cycles: u64,
    transfer_cycles: u64,
}

impl Dram {
    /// Creates the DRAM model for a core clocked at `core_clock_mhz`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has no channels or banks.
    pub fn new(config: DramConfig, core_clock_mhz: u64) -> Self {
        assert!(config.channels > 0, "DRAM needs at least one channel");
        assert!(
            config.banks_per_channel() > 0,
            "DRAM needs at least one bank"
        );
        let tracker = BandwidthTracker::new(&config, core_clock_mhz);
        let channel = Channel {
            banks: vec![
                Bank {
                    open_row: None,
                    busy_until: 0,
                };
                config.banks_per_channel()
            ],
            data_bus_free: 0,
            demand_bus_free: 0,
        };
        let cycles_per_ns = core_clock_mhz as f64 / 1000.0;
        let to_cycles = |ns: f64| (ns * cycles_per_ns).round() as u64;
        Self {
            channels: vec![channel; config.channels],
            tracker,
            stats: DramStats::default(),
            row_hit_cycles: to_cycles(config.t_cl_ns),
            row_open_cycles: to_cycles(config.t_rcd_ns + config.t_cl_ns),
            row_conflict_cycles: to_cycles(config.t_rp_ns + config.t_rcd_ns + config.t_cl_ns),
            transfer_cycles: to_cycles(config.transfer_time_ns()).max(1),
            config,
        }
    }

    /// Copies the complete mutable state of `other` into `self` without
    /// allocating. Used by the sharded multi-core engine to refresh a
    /// per-shard DRAM view from the shared model at each epoch boundary;
    /// both sides are built from the same configuration.
    pub(crate) fn copy_state_from(&mut self, other: &Dram) {
        debug_assert_eq!(self.channels.len(), other.channels.len());
        for (dst, src) in self.channels.iter_mut().zip(&other.channels) {
            dst.banks.copy_from_slice(&src.banks);
            dst.data_bus_free = src.data_bus_free;
            dst.demand_bus_free = src.demand_bus_free;
        }
        self.tracker = other.tracker;
        self.stats = other.stats;
    }

    /// The DRAM configuration.
    pub fn config(&self) -> &DramConfig {
        &self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &DramStats {
        &self.stats
    }

    /// Current bandwidth-utilization quartile as of the last `advance` or
    /// access.
    pub fn bandwidth_quartile(&self) -> BandwidthQuartile {
        self.tracker.quartile()
    }

    /// Advances the bandwidth tracker to `cycle` (called by the system every
    /// so often even when no accesses are issued, so the quartile decays).
    pub fn advance(&mut self, cycle: u64) -> BandwidthQuartile {
        self.tracker.advance(cycle, &mut self.stats)
    }

    /// Issues one 64 B access at `cycle` and returns its completion cycle.
    /// `is_prefetch` only affects statistics.
    pub fn access(&mut self, line: LineAddr, cycle: u64, is_prefetch: bool) -> u64 {
        let raw = line.as_u64();
        let channel_index = (raw % self.config.channels as u64) as usize;
        let banks = self.config.banks_per_channel() as u64;
        let bank_index = ((raw / self.config.channels as u64) % banks) as usize;
        let lines_per_row = (self.config.row_buffer_bytes / 64).max(1) as u64;
        let row = raw / (self.config.channels as u64 * banks * lines_per_row);

        let transfer = self.transfer_cycles;

        let channel = &mut self.channels[channel_index];
        let bank = &mut channel.banks[bank_index];

        let access_latency = match bank.open_row {
            Some(open) if open == row => {
                self.stats.row_hits += 1;
                self.row_hit_cycles
            }
            Some(_) => {
                self.stats.row_misses += 1;
                self.row_conflict_cycles
            }
            None => {
                self.stats.row_misses += 1;
                self.row_open_cycles
            }
        };
        bank.open_row = Some(row);

        let start = cycle.max(bank.busy_until);
        // Demand-first arbitration: demands wait only for earlier demands on
        // the data bus, prefetches wait for all earlier traffic.
        let bus_free = if is_prefetch {
            channel.data_bus_free
        } else {
            channel.demand_bus_free
        };
        let data_ready = (start + access_latency).max(bus_free);
        let completion = data_ready + transfer;
        // Every access — prefetch or demand — occupies the bank for its
        // activation + CAS time: a row activation is not free just because a
        // prefetch issued it. Demand-first arbitration lives entirely on the
        // data bus (`demand_bus_free` advances only for demands), not in the
        // bank model.
        bank.busy_until = start + access_latency;
        channel.data_bus_free = channel.data_bus_free.max(completion);
        if !is_prefetch {
            channel.demand_bus_free = completion;
        }

        self.stats.cas_commands += 1;
        if is_prefetch {
            self.stats.prefetch_accesses += 1;
        }
        // Count the CAS when the column access actually occupies the data
        // bus, so the utilization tracker never exceeds the physical peak.
        self.tracker.record_cas(data_ready, &mut self.stats);
        completion
    }

    /// Rewinds the timing state to cycle 0 for a fresh measurement
    /// interval: statistics are zeroed, bank/bus reservations are released,
    /// and the tracker's window restarts. The *learnt* state carries over —
    /// open rows stay open and the hysteresis counter (and therefore the
    /// broadcast quartile) keeps its value, so the bandwidth signal the
    /// prefetchers see is continuous across the interval boundary.
    pub(crate) fn reset_interval(&mut self) {
        self.stats = DramStats::default();
        for channel in &mut self.channels {
            for bank in &mut channel.banks {
                bank.busy_until = 0;
            }
            channel.data_bus_free = 0;
            channel.demand_bus_free = 0;
        }
        self.tracker.window_end = self.tracker.window_cycles;
        self.tracker.current_window_cas = 0;
    }
}

impl SnapshotState for Dram {
    fn snapshot_tag(&self) -> &'static str {
        "dram"
    }

    fn save_state(&self, writer: &mut StateWriter) -> Result<(), SnapshotError> {
        writer.put_len(self.channels.len());
        for channel in &self.channels {
            writer.put_len(channel.banks.len());
            for bank in &channel.banks {
                writer.put_opt_u64(bank.open_row);
                writer.put_u64(bank.busy_until);
            }
            writer.put_u64(channel.data_bus_free);
            writer.put_u64(channel.demand_bus_free);
        }
        writer.put_u64(self.tracker.window_end);
        writer.put_f64(self.tracker.counter);
        writer.put_u64(self.tracker.current_window_cas);
        writer.put_u8(self.tracker.quartile.as_bits());
        writer.put_u64(self.stats.cas_commands);
        writer.put_u64(self.stats.row_hits);
        writer.put_u64(self.stats.row_misses);
        writer.put_u64(self.stats.prefetch_accesses);
        writer.put_f64(self.stats.utilization_sum);
        writer.put_u64(self.stats.windows);
        Ok(())
    }

    fn load_state(&mut self, reader: &mut StateReader<'_>) -> Result<(), SnapshotError> {
        let channels = reader.get_len()?;
        if channels != self.channels.len() {
            return Err(SnapshotError::Invalid(format!(
                "DRAM has {} channels but the snapshot holds {}",
                self.channels.len(),
                channels
            )));
        }
        for channel in &mut self.channels {
            let banks = reader.get_len()?;
            if banks != channel.banks.len() {
                return Err(SnapshotError::Invalid(format!(
                    "DRAM channel has {} banks but the snapshot holds {}",
                    channel.banks.len(),
                    banks
                )));
            }
            for bank in &mut channel.banks {
                bank.open_row = reader.get_opt_u64()?;
                bank.busy_until = reader.get_u64()?;
            }
            channel.data_bus_free = reader.get_u64()?;
            channel.demand_bus_free = reader.get_u64()?;
        }
        self.tracker.window_end = reader.get_u64()?;
        self.tracker.counter = reader.get_f64()?;
        self.tracker.current_window_cas = reader.get_u64()?;
        self.tracker.quartile = BandwidthQuartile::from_bits(reader.get_u8()?);
        self.stats.cas_commands = reader.get_u64()?;
        self.stats.row_hits = reader.get_u64()?;
        self.stats.row_misses = reader.get_u64()?;
        self.stats.prefetch_accesses = reader.get_u64()?;
        self.stats.utilization_sum = reader.get_f64()?;
        self.stats.windows = reader.get_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DramSpeedGrade;

    fn dram() -> Dram {
        Dram::new(DramConfig::with_speed(1, DramSpeedGrade::Ddr4_2133), 4000)
    }

    #[test]
    fn row_hits_are_faster_than_row_misses() {
        let mut d = dram();
        let cold = d.access(LineAddr::new(0), 0, false);
        // With bank interleaving (16 banks/channel), line 16 maps back to
        // bank 0 and the same 2 KB row; issue it long after the bus is free.
        let hit = d.access(LineAddr::new(16), 10_000, false) - 10_000;
        // Line 512 is bank 0 but a different row: row conflict.
        let miss = d.access(LineAddr::new(512), 20_000, false) - 20_000;
        assert!(
            hit < miss,
            "row hit ({hit}) must be faster than row conflict ({miss})"
        );
        assert!(cold >= hit);
        assert!(d.stats().row_hits >= 1);
        assert!(d.stats().row_misses >= 2);
    }

    #[test]
    fn channel_bus_serializes_back_to_back_accesses() {
        let mut d = dram();
        // Two accesses to different banks at the same cycle still share the
        // channel data bus, so the second completes later.
        let a = d.access(LineAddr::new(0), 0, false);
        let b = d.access(LineAddr::new(1), 0, false); // different bank, same channel
        assert!(b > a);
    }

    #[test]
    fn more_channels_increase_parallelism() {
        let mut one = Dram::new(DramConfig::with_speed(1, DramSpeedGrade::Ddr4_2133), 4000);
        let mut two = Dram::new(DramConfig::with_speed(2, DramSpeedGrade::Ddr4_2133), 4000);
        let mut one_last = 0;
        let mut two_last = 0;
        for i in 0..64u64 {
            one_last = one_last.max(one.access(LineAddr::new(i), 0, false));
            two_last = two_last.max(two.access(LineAddr::new(i), 0, false));
        }
        assert!(
            two_last < one_last,
            "two channels ({two_last}) must drain a burst faster than one ({one_last})"
        );
    }

    #[test]
    fn faster_grade_has_higher_peak() {
        let slow = DramConfig::with_speed(1, DramSpeedGrade::Ddr4_1600);
        let fast = DramConfig::with_speed(1, DramSpeedGrade::Ddr4_2400);
        assert!(fast.peak_bandwidth_gbps() > slow.peak_bandwidth_gbps());
        assert!(fast.transfer_time_ns() < slow.transfer_time_ns());
    }

    #[test]
    fn tracker_reports_low_utilization_when_idle() {
        let config = DramConfig::default();
        let mut tracker = BandwidthTracker::new(&config, 4000);
        let mut stats = DramStats::default();
        let q = tracker.advance(10 * tracker.window_cycles(), &mut stats);
        assert_eq!(q, BandwidthQuartile::Q0);
        assert_eq!(stats.windows, 10);
        assert!(stats.average_utilization() < 0.01);
    }

    #[test]
    fn tracker_reports_high_utilization_under_saturation() {
        let config = DramConfig::default();
        let mut tracker = BandwidthTracker::new(&config, 4000);
        let mut stats = DramStats::default();
        let window = tracker.window_cycles();
        // Issue CAS commands at the peak rate for many windows.
        let transfer_cycles = (config.transfer_time_ns() * 4.0).round() as u64;
        let mut cycle = 0;
        for _ in 0..(window * 20 / transfer_cycles) {
            tracker.record_cas(cycle, &mut stats);
            cycle += transfer_cycles;
        }
        let q = tracker.advance(cycle, &mut stats);
        assert!(
            q >= BandwidthQuartile::Q2,
            "saturating traffic should report high utilization, got {q}"
        );
    }

    #[test]
    fn tracker_decays_after_a_burst() {
        let config = DramConfig::default();
        let mut tracker = BandwidthTracker::new(&config, 4000);
        let mut stats = DramStats::default();
        for i in 0..2000u64 {
            tracker.record_cas(i * 2, &mut stats);
        }
        let busy = tracker.advance(4100, &mut stats);
        let after_idle = tracker.advance(4100 + 20 * tracker.window_cycles(), &mut stats);
        assert!(
            after_idle < busy,
            "utilization must decay when traffic stops"
        );
        assert_eq!(after_idle, BandwidthQuartile::Q0);
    }

    /// The reference window loop `advance` used before the closed-form
    /// decay: one iteration per elapsed window, no fast paths.
    fn reference_advance(
        tracker: &mut BandwidthTracker,
        cycle: u64,
        stats: &mut DramStats,
    ) -> BandwidthQuartile {
        while cycle >= tracker.window_end {
            tracker.counter = tracker.counter / 2.0 + tracker.current_window_cas as f64;
            let utilization = (tracker.counter / (2.0 * tracker.peak_cas_per_window)).min(1.0);
            tracker.quartile = BandwidthQuartile::from_fraction(utilization);
            stats.utilization_sum += utilization;
            stats.windows += 1;
            tracker.current_window_cas = 0;
            tracker.window_end += tracker.window_cycles;
        }
        tracker.quartile
    }

    #[test]
    fn closed_form_decay_is_bit_exact_against_the_window_loop() {
        let config = DramConfig::default();
        let mut fast = BandwidthTracker::new(&config, 4000);
        let mut slow = fast;
        let mut fast_stats = DramStats::default();
        let mut slow_stats = DramStats::default();
        let mut state = 0x5EED_u64;
        let mut cycle = 0u64;
        // Bursts of CAS traffic separated by gaps spanning hundreds of
        // thousands of windows — the exact shape the closed form exists
        // for — interleaved with short hops that exercise the slow path.
        for round in 0..200 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let burst = (state >> 48) % 300;
            for i in 0..burst {
                let at = cycle + i * ((state >> 40) % 37 + 1);
                fast.record_cas(at, &mut fast_stats);
                reference_advance(&mut slow, at, &mut slow_stats);
                slow.current_window_cas += 1;
            }
            let gap = if round % 3 == 0 {
                ((state >> 20) % 500_000) * fast.window_cycles()
            } else {
                (state >> 20) % 2_000
            };
            cycle += burst * 37 + gap;
            let fast_q = fast.advance(cycle, &mut fast_stats);
            let slow_q = reference_advance(&mut slow, cycle, &mut slow_stats);
            assert_eq!(fast_q, slow_q, "quartile diverged at round {round}");
            assert_eq!(fast, slow, "tracker state diverged at round {round}");
            assert_eq!(
                fast_stats.utilization_sum.to_bits(),
                slow_stats.utilization_sum.to_bits(),
                "utilization sum diverged at round {round}"
            );
            assert_eq!(fast_stats, slow_stats, "stats diverged at round {round}");
        }
        assert!(
            fast_stats.windows > 1_000_000,
            "gaps must span many windows"
        );
    }

    #[test]
    fn long_idle_gap_advance_is_fast() {
        // O(gap/window) catch-up would make this take minutes; the closed
        // form makes it instant.
        let config = DramConfig::default();
        let mut tracker = BandwidthTracker::new(&config, 4000);
        let mut stats = DramStats::default();
        for i in 0..1_000u64 {
            tracker.record_cas(i * 3, &mut stats);
        }
        let start = std::time::Instant::now();
        let q = tracker.advance(u64::MAX / 2, &mut stats);
        assert!(
            start.elapsed().as_millis() < 2_000,
            "idle catch-up must be closed-form, took {:?}",
            start.elapsed()
        );
        assert_eq!(q, BandwidthQuartile::Q0);
        assert!(stats.windows > 1_000_000_000_000);
    }

    #[test]
    fn quartile_visible_through_dram_facade() {
        let mut d = dram();
        assert_eq!(d.bandwidth_quartile(), BandwidthQuartile::Q0);
        for i in 0..5000u64 {
            d.access(LineAddr::new(i * 7), i * 4, false);
        }
        d.advance(5000 * 4);
        // Back-to-back misses should push utilization above the bottom quartile.
        assert!(d.bandwidth_quartile() > BandwidthQuartile::Q0);
    }

    #[test]
    fn prefetch_accesses_are_counted_separately() {
        let mut d = dram();
        d.access(LineAddr::new(0), 0, true);
        d.access(LineAddr::new(99), 0, false);
        assert_eq!(d.stats().prefetch_accesses, 1);
        assert_eq!(d.stats().cas_commands, 2);
    }

    #[test]
    fn stats_helpers() {
        let stats = DramStats {
            row_hits: 3,
            row_misses: 1,
            utilization_sum: 2.0,
            windows: 4,
            ..DramStats::default()
        };
        assert!((stats.row_hit_rate() - 0.75).abs() < 1e-12);
        assert!((stats.average_utilization() - 0.5).abs() < 1e-12);
        assert_eq!(DramStats::default().row_hit_rate(), 0.0);
    }

    /// Regression for the free-prefetch-activation bug: prefetches used to
    /// rewrite `open_row` without reserving `busy_until`, so a same-bank
    /// prefetch burst never serialized at the bank. At 4 GHz / DDR4-2133 the
    /// timings are exact: row empty = 120 cycles, row conflict = 180,
    /// transfer = 15.
    #[test]
    fn prefetch_accesses_reserve_the_bank() {
        let mut d = dram();
        // Line 0 → bank 0, row 0; bank idle and closed: 120 + 15 = 135.
        let first = d.access(LineAddr::new(0), 0, true);
        assert_eq!(first, d.row_open_cycles + d.transfer_cycles);
        // Line 512 → bank 0, row 1: must wait for the first activation
        // (busy_until = 120), then pay a full row conflict.
        let second = d.access(LineAddr::new(512), 0, true);
        assert_eq!(
            second,
            d.row_open_cycles + d.row_conflict_cycles + d.transfer_cycles,
            "same-bank prefetch bursts must serialize at the bank"
        );
        assert_eq!(second, first + d.row_conflict_cycles);
    }

    /// A demand arriving after a prefetch opened the wrong row pays the full
    /// precharge + activate + CAS penalty *and* waits out the prefetch's
    /// bank reservation — the prefetch activation is not free.
    #[test]
    fn demand_after_prefetch_row_conflict_pays_precharge_and_activate() {
        let mut d = dram();
        let prefetch = d.access(LineAddr::new(0), 0, true);
        let demand = d.access(LineAddr::new(512), 0, false);
        // start = busy_until (120), + row conflict (180) + transfer (15).
        assert_eq!(
            demand,
            d.row_open_cycles + d.row_conflict_cycles + d.transfer_cycles
        );
        assert!(demand > prefetch);
        assert_eq!(d.stats().row_misses, 2);
    }

    /// The composite access latencies must be the rounding of the **summed**
    /// nanoseconds per speed grade, not the sum of independently rounded
    /// parameters — those differ when per-parameter products land near .5.
    #[test]
    fn composite_latencies_round_summed_nanoseconds_per_grade() {
        for grade in DramSpeedGrade::ALL {
            for &clock_mhz in &[1200u64, 2100, 2667, 2900, 3300, 4000] {
                let config = DramConfig::with_speed(1, grade);
                let d = Dram::new(config, clock_mhz);
                let f = clock_mhz as f64 / 1000.0;
                let cycles = |ns: f64| (ns * f).round() as u64;
                assert_eq!(d.row_hit_cycles, cycles(config.t_cl_ns));
                assert_eq!(d.row_open_cycles, cycles(config.t_rcd_ns + config.t_cl_ns));
                assert_eq!(
                    d.row_conflict_cycles,
                    cycles(config.t_rp_ns + config.t_rcd_ns + config.t_cl_ns),
                    "{} @ {clock_mhz} MHz",
                    grade.label()
                );
            }
        }
        // Pin the case that separates the two schemes: at 3.3 GHz each 15 ns
        // parameter is 49.5 cycles. Independent rounding gives 50+50+50 =
        // 150; the physical sum is 45 ns = 148.5 → 149.
        let d = Dram::new(DramConfig::with_speed(1, DramSpeedGrade::Ddr4_2133), 3300);
        assert_eq!(d.row_conflict_cycles, 149);
    }

    /// Demand-first arbitration invariant: prefetch traffic scheduled into
    /// other banks' idle slots must not move demand completion cycles by a
    /// single cycle, across every speed grade.
    #[test]
    fn demand_timing_is_independent_of_prefetch_traffic_on_other_banks() {
        for grade in DramSpeedGrade::ALL {
            let config = DramConfig::with_speed(1, grade);
            let mut quiet = Dram::new(config, 4000);
            let mut noisy = Dram::new(config, 4000);
            let mut quiet_completions = Vec::new();
            let mut noisy_completions = Vec::new();
            let mut cycle = 0u64;
            for i in 0..64u64 {
                // Demands walk bank 0, a new row each time (line i*512).
                let line = LineAddr::new(i * 512);
                quiet_completions.push(quiet.access(line, cycle, false));
                noisy_completions.push(noisy.access(line, cycle, false));
                // The noisy copy also sees prefetches on bank 3 (line 3 is
                // bank 3; +16 lines stays in-bank, advancing the row slowly).
                noisy.access(LineAddr::new(3 + (i % 13) * 16), cycle + 200, true);
                cycle += 400;
            }
            assert_eq!(
                quiet_completions,
                noisy_completions,
                "prefetches on idle banks shifted demand timing ({})",
                grade.label()
            );
        }
    }
}
