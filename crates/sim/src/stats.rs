//! Result types and coverage / accuracy / pollution accounting.
//!
//! The paper reports three classes of numbers this module supports:
//!
//! * **performance delta over baseline** — computed from per-core IPCs
//!   ([`CoreResult::ipc`], [`SimResult::speedup_over`]);
//! * **coverage and mispredictions** as fractions of L2 demand accesses
//!   (Figure 16, [`PrefetchAccounting`]);
//! * the appendix **pollution breakdown** of LLC victims evicted by
//!   prefetches (Figure 20, [`PollutionBreakdown`]).

use crate::cache::{CacheGeometry, CacheStats};
use crate::dram::DramStats;
use serde::{Deserialize, Serialize};

/// Prefetch coverage/accuracy accounting for one core's L2 prefetcher.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PrefetchAccounting {
    /// Demand accesses that reached the L2 (i.e. demand L1 misses).
    pub l2_demand_accesses: u64,
    /// Demand L2 accesses served by a prefetched line (resident and not yet
    /// used, or still in flight).
    pub covered: u64,
    /// Demand L2 accesses that had to go all the way to DRAM unaided.
    pub uncovered: u64,
    /// Prefetch requests accepted and issued into the hierarchy.
    pub prefetches_issued: u64,
    /// Prefetched lines that were used by a demand access.
    pub prefetches_used: u64,
    /// Prefetched lines never used (finalized at the end of the run).
    pub prefetches_unused: u64,
}

impl PrefetchAccounting {
    /// Fraction of L2 demand accesses covered by prefetching (Figure 16's
    /// "Covered" bar).
    pub fn coverage(&self) -> f64 {
        ratio(self.covered, self.l2_demand_accesses)
    }

    /// Fraction of L2 demand accesses that missed to DRAM unaided
    /// ("Uncovered").
    pub fn uncovered_fraction(&self) -> f64 {
        ratio(self.uncovered, self.l2_demand_accesses)
    }

    /// Unused prefetches as a fraction of L2 demand accesses
    /// ("Mispredicted"). This is the paper's normalization in Figure 16.
    pub fn misprediction_fraction(&self) -> f64 {
        ratio(self.prefetches_unused, self.l2_demand_accesses)
    }

    /// Fraction of issued prefetches that were used (prefetch accuracy).
    pub fn accuracy(&self) -> f64 {
        ratio(self.prefetches_used, self.prefetches_issued)
    }

    /// Finalizes the unused-prefetch count once the run is over.
    pub fn finalize(&mut self) {
        self.prefetches_unused = self.prefetches_issued.saturating_sub(self.prefetches_used);
    }

    /// Merges another accounting record into this one (used to aggregate
    /// cores or workloads).
    pub fn merge(&mut self, other: &PrefetchAccounting) {
        self.l2_demand_accesses += other.l2_demand_accesses;
        self.covered += other.covered;
        self.uncovered += other.uncovered;
        self.prefetches_issued += other.prefetches_issued;
        self.prefetches_used += other.prefetches_used;
        self.prefetches_unused += other.prefetches_unused;
    }
}

/// Classification of LLC victims evicted by prefetch fills (Figure 20).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PollutionBreakdown {
    /// Victims never referenced again before the end of the run: already
    /// dead, so their eviction caused no harm.
    pub no_reuse: u64,
    /// Victims whose next reference hit on-die because a prefetch brought
    /// them back first.
    pub prefetched_before_use: u64,
    /// Victims whose next reference had to go back to DRAM: true pollution.
    pub bad_pollution: u64,
}

impl PollutionBreakdown {
    /// Total classified victims.
    pub fn total(&self) -> u64 {
        self.no_reuse + self.prefetched_before_use + self.bad_pollution
    }

    /// The three classes as fractions of the total, in the order
    /// (NoReuse, PrefetchedBeforeUse, BadPollution).
    pub fn fractions(&self) -> (f64, f64, f64) {
        let total = self.total();
        (
            ratio(self.no_reuse, total),
            ratio(self.prefetched_before_use, total),
            ratio(self.bad_pollution, total),
        )
    }
}

/// Per-core outcome of a simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoreResult {
    /// Workload name the core ran.
    pub workload: String,
    /// Name of the L2 prefetcher attached to the core.
    pub prefetcher: String,
    /// Instructions executed (memory accesses plus gap instructions).
    pub instructions: u64,
    /// Cycle at which the core finished its trace.
    pub finish_cycle: u64,
    /// L1 data-cache statistics.
    pub l1: CacheStats,
    /// Private L2 statistics.
    pub l2: CacheStats,
    /// Prefetch coverage/accuracy accounting.
    pub accounting: PrefetchAccounting,
}

impl CoreResult {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.finish_cycle == 0 {
            0.0
        } else {
            self.instructions as f64 / self.finish_cycle as f64
        }
    }
}

/// Mean and half-width of a 95% confidence interval over per-interval
/// estimates from a sampled run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IntervalEstimate {
    /// Arithmetic mean of the per-interval values.
    pub mean: f64,
    /// Half-width of the 95% confidence interval around [`Self::mean`]
    /// (Student's t for small interval counts). Zero when only one
    /// interval was measured.
    pub ci95: f64,
}

impl IntervalEstimate {
    /// Whether `value` falls inside `mean ± ci95` (inclusive).
    pub fn covers(&self, value: f64) -> bool {
        (value - self.mean).abs() <= self.ci95 + 1e-12
    }
}

/// How a sampled (interval-sampling) run was configured and how its
/// per-interval measurements spread. Attached to a [`SimResult`] only when
/// the run was sampled; exact runs leave it `None` so their serialized
/// form is unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SamplingStats {
    /// Records consumed in functional warm-up before the first interval.
    pub warmup_accesses: u64,
    /// Records measured in detail per interval.
    pub interval_accesses: u64,
    /// Number of measurement intervals aggregated.
    pub intervals: u32,
    /// Seed that placed the intervals within the trace.
    pub seed: u64,
    /// Per-interval IPC estimate (mean ± 95% CI).
    pub ipc: IntervalEstimate,
    /// Per-interval prefetch-coverage estimate.
    pub coverage: IntervalEstimate,
    /// Per-interval prefetch-accuracy estimate.
    pub accuracy: IntervalEstimate,
}

/// The complete outcome of one simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimResult {
    /// One entry per core, in core order.
    pub cores: Vec<CoreResult>,
    /// Shared LLC statistics.
    pub llc: CacheStats,
    /// DRAM statistics (bandwidth utilization, row behaviour).
    pub dram: DramStats,
    /// LLC pollution classification.
    pub pollution: PollutionBreakdown,
    /// Total simulated cycles.
    pub cycles: u64,
    /// Effective geometry of each cache level (L1, L2, LLC), echoed from
    /// the validated configuration. When a non-power-of-two geometry is
    /// rounded up, `rounded` and `effective_bytes` record what was actually
    /// modeled.
    pub cache_geometry: Vec<CacheGeometry>,
    /// Sampling methodology and confidence intervals when this result came
    /// from a sampled run (`None` for exact runs). The headline counters
    /// above then aggregate the measured intervals only.
    pub sampling: Option<SamplingStats>,
}

impl SimResult {
    /// Geometric-mean speedup of this run over a baseline run of the same
    /// workloads (the paper's "performance delta over baseline" metric,
    /// reported as a percentage elsewhere).
    ///
    /// # Panics
    ///
    /// Panics if the two results have different core counts.
    pub fn speedup_over(&self, baseline: &SimResult) -> f64 {
        assert_eq!(
            self.cores.len(),
            baseline.cores.len(),
            "speedup requires matching core counts"
        );
        if self.cores.is_empty() {
            return 1.0;
        }
        let log_sum: f64 = self
            .cores
            .iter()
            .zip(baseline.cores.iter())
            .map(|(new, old)| {
                let old_ipc = old.ipc().max(1e-12);
                (new.ipc().max(1e-12) / old_ipc).ln()
            })
            .sum();
        (log_sum / self.cores.len() as f64).exp()
    }

    /// Aggregated prefetch accounting across all cores.
    pub fn total_accounting(&self) -> PrefetchAccounting {
        let mut total = PrefetchAccounting::default();
        for core in &self.cores {
            total.merge(&core.accounting);
        }
        total
    }
}

fn ratio(numerator: u64, denominator: u64) -> f64 {
    if denominator == 0 {
        0.0
    } else {
        numerator as f64 / denominator as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn core(ipc_num: u64, ipc_den: u64) -> CoreResult {
        CoreResult {
            workload: "w".to_owned(),
            prefetcher: "none".to_owned(),
            instructions: ipc_num,
            finish_cycle: ipc_den,
            l1: CacheStats::default(),
            l2: CacheStats::default(),
            accounting: PrefetchAccounting::default(),
        }
    }

    fn result(cores: Vec<CoreResult>) -> SimResult {
        SimResult {
            cores,
            llc: CacheStats::default(),
            dram: DramStats::default(),
            pollution: PollutionBreakdown::default(),
            cycles: 0,
            cache_geometry: Vec::new(),
            sampling: None,
        }
    }

    #[test]
    fn ipc_is_instructions_over_cycles() {
        assert!((core(1000, 500).ipc() - 2.0).abs() < 1e-12);
        assert_eq!(core(10, 0).ipc(), 0.0);
    }

    #[test]
    fn speedup_is_geometric_mean_of_core_ratios() {
        let baseline = result(vec![core(1000, 1000), core(1000, 1000)]);
        // Core 0 speeds up 2x, core 1 stays flat: geomean = sqrt(2).
        let improved = result(vec![core(1000, 500), core(1000, 1000)]);
        let speedup = improved.speedup_over(&baseline);
        assert!((speedup - 2f64.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn speedup_of_identical_runs_is_one() {
        let a = result(vec![core(123, 456)]);
        assert!((a.speedup_over(&a) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "matching core counts")]
    fn speedup_rejects_mismatched_core_counts() {
        let a = result(vec![core(1, 1)]);
        let b = result(vec![core(1, 1), core(1, 1)]);
        let _ = a.speedup_over(&b);
    }

    #[test]
    fn accounting_fractions() {
        let mut acc = PrefetchAccounting {
            l2_demand_accesses: 100,
            covered: 60,
            uncovered: 30,
            prefetches_issued: 80,
            prefetches_used: 60,
            prefetches_unused: 0,
        };
        acc.finalize();
        assert!((acc.coverage() - 0.6).abs() < 1e-12);
        assert!((acc.uncovered_fraction() - 0.3).abs() < 1e-12);
        assert!((acc.accuracy() - 0.75).abs() < 1e-12);
        assert!((acc.misprediction_fraction() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn accounting_merge_adds_fields() {
        let a = PrefetchAccounting {
            l2_demand_accesses: 10,
            covered: 5,
            uncovered: 2,
            prefetches_issued: 7,
            prefetches_used: 5,
            prefetches_unused: 2,
        };
        let mut total = PrefetchAccounting::default();
        total.merge(&a);
        total.merge(&a);
        assert_eq!(total.l2_demand_accesses, 20);
        assert_eq!(total.prefetches_unused, 4);
    }

    #[test]
    fn empty_accounting_has_zero_fractions() {
        let acc = PrefetchAccounting::default();
        assert_eq!(acc.coverage(), 0.0);
        assert_eq!(acc.accuracy(), 0.0);
    }

    #[test]
    fn pollution_fractions_sum_to_one() {
        let p = PollutionBreakdown {
            no_reuse: 84,
            prefetched_before_use: 13,
            bad_pollution: 3,
        };
        let (a, b, c) = p.fractions();
        assert!((a + b + c - 1.0).abs() < 1e-12);
        assert!(a > b && b > c);
        assert_eq!(PollutionBreakdown::default().fractions(), (0.0, 0.0, 0.0));
    }
}
