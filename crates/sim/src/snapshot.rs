//! Versioned machine checkpoints for sampled simulation.
//!
//! A [`MachineState`] is an opaque, self-describing byte buffer produced by
//! [`Machine::capture`](crate::Machine::capture) and consumed by
//! [`Machine::restore`](crate::Machine::restore). The container owns the
//! header — a magic number and a format version — while the body layout is
//! defined by the capture/restore pair and the [`SnapshotState`] impls of
//! every component (caches, DRAM, each prefetcher). Bumping any component's
//! layout means bumping [`FORMAT_VERSION`]: old checkpoints are then
//! rejected with [`SnapshotError::UnsupportedVersion`] instead of being
//! misparsed, so a stale `--checkpoint-dir` degrades to recomputation, not
//! corruption.
//!
//! Checkpoints are position-independent with respect to the trace: they
//! store the *count* of consumed records, not the records themselves, and
//! restore replays the source to that count. That keeps a checkpoint of a
//! multi-gigabyte trace in the tens of kilobytes (cache tags + predictor
//! tables) and makes the same format work for synthetic and file-backed
//! sources alike.

use dspatch_types::{SnapshotError, StateReader, StateWriter};

/// `b"DSPC"` — DSPatch checkpoint.
const MAGIC: u32 = u32::from_le_bytes(*b"DSPC");

/// Current checkpoint body-layout version. Bump on ANY change to the byte
/// layout written by `Machine::capture` or a component `SnapshotState` impl.
pub const FORMAT_VERSION: u32 = 1;

/// A serialized machine checkpoint (see the [module docs](self)).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MachineState {
    bytes: Vec<u8>,
}

impl MachineState {
    /// Starts a writer with the container header already emitted; the
    /// machine body is appended and sealed with [`MachineState::from_writer`].
    pub(crate) fn writer() -> StateWriter {
        let mut writer = StateWriter::new();
        writer.put_u32(MAGIC);
        writer.put_u32(FORMAT_VERSION);
        writer
    }

    /// Seals a writer started by [`MachineState::writer`].
    pub(crate) fn from_writer(writer: StateWriter) -> Self {
        Self {
            bytes: writer.into_bytes(),
        }
    }

    /// Validates the header and returns a reader positioned at the body.
    pub(crate) fn body_reader(&self) -> Result<StateReader<'_>, SnapshotError> {
        let mut reader = StateReader::new(&self.bytes);
        let magic = reader.get_u32()?;
        if magic != MAGIC {
            return Err(SnapshotError::Invalid(format!(
                "not a machine checkpoint (magic {magic:#010x})"
            )));
        }
        let version = reader.get_u32()?;
        if version != FORMAT_VERSION {
            return Err(SnapshotError::UnsupportedVersion {
                found: version,
                supported: FORMAT_VERSION,
            });
        }
        Ok(reader)
    }

    /// Wraps bytes read back from disk, validating the header (the body is
    /// validated structurally on [`Machine::restore`](crate::Machine::restore)).
    pub fn from_bytes(bytes: Vec<u8>) -> Result<Self, SnapshotError> {
        let state = Self { bytes };
        state.body_reader()?;
        Ok(state)
    }

    /// The serialized checkpoint, header included — what `--checkpoint-dir`
    /// persists.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Consumes the checkpoint into its serialized bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }

    /// Serialized size in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Whether the checkpoint is empty (never true for a valid one).
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_through_bytes() {
        let mut writer = MachineState::writer();
        writer.put_u64(42);
        let state = MachineState::from_writer(writer);
        let reloaded = MachineState::from_bytes(state.as_bytes().to_vec()).unwrap();
        assert_eq!(state, reloaded);
        let mut reader = reloaded.body_reader().unwrap();
        assert_eq!(reader.get_u64().unwrap(), 42);
        reader.expect_end().unwrap();
    }

    #[test]
    fn rejects_wrong_magic() {
        let err = MachineState::from_bytes(vec![0u8; 16]).unwrap_err();
        assert!(matches!(err, SnapshotError::Invalid(_)), "{err:?}");
    }

    #[test]
    fn rejects_future_versions() {
        let mut writer = StateWriter::new();
        writer.put_u32(MAGIC);
        writer.put_u32(FORMAT_VERSION + 7);
        let err = MachineState::from_bytes(writer.into_bytes()).unwrap_err();
        assert!(
            matches!(
                err,
                SnapshotError::UnsupportedVersion {
                    found,
                    supported: FORMAT_VERSION,
                } if found == FORMAT_VERSION + 7
            ),
            "{err:?}"
        );
    }

    #[test]
    fn rejects_truncated_header() {
        let err = MachineState::from_bytes(vec![1, 2, 3]).unwrap_err();
        assert!(
            matches!(err, SnapshotError::UnexpectedEof { .. }),
            "{err:?}"
        );
    }
}
