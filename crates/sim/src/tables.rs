//! Open-addressed hash structures for the per-access hot path.
//!
//! The machine tracks two line-keyed populations: in-flight DRAM fills
//! (probed at least once per L2 miss and once per prefetch candidate) and
//! LLC pollution victims (probed on every demand that leaves the L2). Both
//! previously lived in `std::collections` tables behind an Fx hasher; the
//! generic SwissTable machinery — `Option`-wrapped buckets, hasher plumbing,
//! group scans — costs more than the probe itself for 8-byte keys.
//!
//! [`LineTable`] and [`LineSet`] replace them with the simplest structure
//! that wins: a power-of-two slab of `u64` keys (multiply-shift hashed),
//! linear probing, and backward-shift deletion (no tombstones, so heavy
//! insert/remove churn — millions of fills over a few hundred live entries —
//! never degrades probe lengths). Capacity is seeded from the MSHR
//! configuration and doubles at 1/2 load — plain linear probing wants the
//! headroom (there is no SIMD group scan to ride out long clusters), and
//! at 8 bytes per slot the memory cost is irrelevant.
//!
//! Keys are cache-line numbers (byte address >> 6), which can never equal
//! the reserved [`EMPTY`] sentinel of `u64::MAX`.

/// Reserved key marking an unoccupied slot.
const EMPTY: u64 = u64::MAX;

/// Multiplicative hash constant (same mix the RR-table and PHT hashes use).
const MIX: u64 = 0x9E37_79B9_7F4A_7C15;

/// Result of probing a [`LineTable`] for a key that may need inserting.
pub enum Slot<'a, V> {
    /// The key is present; the value can be updated in place.
    Occupied(&'a mut V),
    /// The key is absent.
    Vacant(VacantSlot<'a, V>),
}

/// An insertion point returned by [`LineTable::slot`] for an absent key.
pub struct VacantSlot<'a, V> {
    table: &'a mut LineTable<V>,
    key: u64,
    index: usize,
}

impl<V: Copy> VacantSlot<'_, V> {
    /// Inserts `value` for the probed key.
    pub fn insert(self, value: V) {
        self.table.keys[self.index] = self.key;
        self.table.vals[self.index] = value;
        self.table.len += 1;
        if self.table.len * 2 > self.table.keys.len() {
            self.table.grow();
        }
    }
}

/// An open-addressed `u64 → V` map specialized for line-address keys.
#[derive(Debug, Clone)]
pub struct LineTable<V> {
    keys: Vec<u64>,
    vals: Vec<V>,
    /// `keys.len() - 1`; the capacity is always a power of two.
    mask: usize,
    /// Right-shift applied to the hash product: `64 - log2(capacity)`.
    shift: u32,
    len: usize,
    /// A copy of the default value used to (re)initialize slots.
    fill: V,
}

impl<V: Copy> LineTable<V> {
    /// Creates a table with room for at least `capacity` entries before the
    /// first growth (sized up to the next power of two at 1/2 load).
    pub fn with_capacity(capacity: usize, fill: V) -> Self {
        let slots = (capacity.max(8) * 2).next_power_of_two();
        Self {
            keys: vec![EMPTY; slots],
            vals: vec![fill; slots],
            mask: slots - 1,
            shift: 64 - slots.trailing_zeros(),
            len: 0,
            fill,
        }
    }

    /// Number of live entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the table holds no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Removes every entry, keeping the allocated capacity. O(capacity);
    /// used by the epoch engine to reset its per-epoch LLC overlay, whose
    /// capacity stays small and steady.
    pub fn clear(&mut self) {
        self.keys.fill(EMPTY);
        self.len = 0;
    }

    #[inline]
    fn home(&self, key: u64) -> usize {
        (key.wrapping_mul(MIX) >> self.shift) as usize
    }

    /// Index of `key`'s slot if present.
    #[inline]
    fn find(&self, key: u64) -> Option<usize> {
        debug_assert_ne!(key, EMPTY, "line key aliases the empty sentinel");
        let mut i = self.home(key);
        loop {
            let k = self.keys[i];
            if k == key {
                return Some(i);
            }
            if k == EMPTY {
                return None;
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Mutable access to `key`'s value, if present.
    #[inline]
    pub fn get_mut(&mut self, key: u64) -> Option<&mut V> {
        self.find(key).map(|i| &mut self.vals[i])
    }

    /// Probes `key`, returning either the occupied value or an insertion
    /// point — one hash, one probe sequence, like the `HashMap` entry API.
    #[inline]
    pub fn slot(&mut self, key: u64) -> Slot<'_, V> {
        debug_assert_ne!(key, EMPTY, "line key aliases the empty sentinel");
        let mut i = self.home(key);
        loop {
            let k = self.keys[i];
            if k == key {
                return Slot::Occupied(&mut self.vals[i]);
            }
            if k == EMPTY {
                return Slot::Vacant(VacantSlot {
                    table: self,
                    key,
                    index: i,
                });
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Inserts `value` under `key`, replacing (and returning) any previous
    /// value.
    pub fn insert(&mut self, key: u64, value: V) -> Option<V> {
        match self.slot(key) {
            Slot::Occupied(v) => Some(std::mem::replace(v, value)),
            Slot::Vacant(slot) => {
                slot.insert(value);
                None
            }
        }
    }

    /// Removes `key`, returning its value if it was present. Uses
    /// backward-shift deletion: the probe chain after the hole is compacted
    /// so no tombstone is left behind.
    pub fn remove(&mut self, key: u64) -> Option<V> {
        let slot = self.find(key)?;
        let value = self.vals[slot];
        self.keys[slot] = EMPTY;
        self.len -= 1;
        // Compact the cluster following the hole.
        let mut hole = slot;
        let mut i = (slot + 1) & self.mask;
        while self.keys[i] != EMPTY {
            let home = self.home(self.keys[i]);
            // Move the entry into the hole unless its home position lies in
            // the cyclic range (hole, i] — in which case the hole does not
            // break its probe chain.
            let in_range = if hole <= i {
                hole < home && home <= i
            } else {
                hole < home || home <= i
            };
            if !in_range {
                self.keys[hole] = self.keys[i];
                self.vals[hole] = self.vals[i];
                self.keys[i] = EMPTY;
                hole = i;
            }
            i = (i + 1) & self.mask;
        }
        Some(value)
    }

    #[cold]
    fn grow(&mut self) {
        let new_slots = self.keys.len() * 2;
        let old_keys = std::mem::replace(&mut self.keys, vec![EMPTY; new_slots]);
        let old_vals = std::mem::replace(&mut self.vals, vec![self.fill; new_slots]);
        self.mask = new_slots - 1;
        self.shift = 64 - new_slots.trailing_zeros();
        for (key, val) in old_keys.into_iter().zip(old_vals) {
            if key == EMPTY {
                continue;
            }
            let mut i = self.home(key);
            while self.keys[i] != EMPTY {
                i = (i + 1) & self.mask;
            }
            self.keys[i] = key;
            self.vals[i] = val;
        }
    }
}

/// An open-addressed set of line addresses (a [`LineTable`] without values).
#[derive(Debug, Clone)]
pub struct LineSet {
    inner: LineTable<()>,
}

impl LineSet {
    /// Creates a set with room for at least `capacity` lines before the
    /// first growth.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            inner: LineTable::with_capacity(capacity, ()),
        }
    }

    /// Number of lines in the set.
    #[inline]
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Inserts `key`; returns whether it was newly added.
    #[inline]
    pub fn insert(&mut self, key: u64) -> bool {
        match self.inner.slot(key) {
            Slot::Occupied(_) => false,
            Slot::Vacant(slot) => {
                slot.insert(());
                true
            }
        }
    }

    /// Removes `key`; returns whether it was present.
    #[inline]
    pub fn remove(&mut self, key: u64) -> bool {
        self.inner.remove(key).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Differential-tests the table against `std::collections::HashMap`
    /// through a long, deterministic insert/remove/update churn with a
    /// deliberately clustered key distribution.
    #[test]
    fn behaves_like_a_hash_map_under_churn() {
        let mut table: LineTable<u64> = LineTable::with_capacity(16, 0);
        let mut reference = std::collections::HashMap::new();
        let mut state = 0x0123_4567_89AB_CDEF_u64;
        for step in 0..200_000u64 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            // Cluster keys into a small range so probe chains actually form.
            let key = (state >> 48) % 4096;
            match state % 4 {
                0 | 1 => {
                    assert_eq!(table.insert(key, step), reference.insert(key, step));
                }
                2 => {
                    assert_eq!(table.remove(key), reference.remove(&key));
                }
                _ => match table.slot(key) {
                    Slot::Occupied(v) => {
                        *v += 1;
                        *reference.get_mut(&key).expect("reference agrees") += 1;
                    }
                    Slot::Vacant(slot) => {
                        assert!(!reference.contains_key(&key));
                        slot.insert(step);
                        reference.insert(key, step);
                    }
                },
            }
            assert_eq!(table.len(), reference.len());
        }
        for (&key, &val) in &reference {
            assert_eq!(table.get_mut(key).copied(), Some(val));
        }
    }

    #[test]
    fn backward_shift_keeps_probe_chains_reachable() {
        // Force one probe cluster: capacity 16 stays fixed (no growth at 8
        // entries), keys engineered to collide would need hash inversion, so
        // instead fill enough keys that clusters arise, then delete from the
        // middle and verify every survivor is still found.
        let mut table: LineTable<usize> = LineTable::with_capacity(64, 0);
        let keys: Vec<u64> = (0..56).map(|i| i * 131).collect();
        for (i, &k) in keys.iter().enumerate() {
            table.insert(k, i);
        }
        for (i, &k) in keys.iter().enumerate() {
            if i % 3 == 0 {
                assert_eq!(table.remove(k), Some(i));
            }
        }
        for (i, &k) in keys.iter().enumerate() {
            if i % 3 == 0 {
                assert_eq!(table.get_mut(k), None);
            } else {
                assert_eq!(table.get_mut(k).copied(), Some(i));
            }
        }
    }

    #[test]
    fn set_tracks_membership() {
        let mut set = LineSet::with_capacity(4);
        assert!(set.insert(10));
        assert!(!set.insert(10));
        assert!(set.remove(10));
        assert!(!set.remove(10));
        assert!(set.is_empty());
        for i in 0..1000 {
            set.insert(i * 7);
        }
        assert_eq!(set.len(), 1000);
    }

    #[test]
    fn growth_preserves_contents() {
        let mut table: LineTable<u64> = LineTable::with_capacity(8, 0);
        for i in 0..10_000u64 {
            table.insert(i, i * 2);
        }
        assert_eq!(table.len(), 10_000);
        for i in 0..10_000u64 {
            assert_eq!(table.get_mut(i).copied(), Some(i * 2));
        }
    }
}

/// A calendar queue for (ready-cycle, line) fill events, replacing a single
/// `BinaryHeap` whose size — and therefore per-operation cost — tracked the
/// whole DRAM backlog (tens of thousands of entries when prefetches queue
/// behind a saturated bus).
///
/// Events are binned into fixed-width cycle windows held as unsorted ring
/// buckets; only the current window lives in a real heap, so push is O(1)
/// for future windows and pop pays `log` of the few events due *now*
/// instead of `log` of everything in flight. Events beyond the ring horizon
/// overflow into a spill heap that is migrated window by window.
///
/// Pop order is exactly the `BinaryHeap` order it replaces —
/// lexicographic `(ready, line)` — because windows are processed in
/// ascending order and each window's events pop through the near heap.
#[derive(Debug)]
pub struct ReadyQueue {
    /// Events in windows `<= window`: the only heap-ordered portion.
    near: std::collections::BinaryHeap<std::cmp::Reverse<(u64, u64)>>,
    /// Ring of future windows: `buckets[w & (buckets.len() - 1)]` holds
    /// events whose window is `w`, for `window < w < window + buckets.len()`.
    buckets: Vec<Vec<(u64, u64)>>,
    /// Events at or beyond the ring horizon.
    overflow: std::collections::BinaryHeap<std::cmp::Reverse<(u64, u64)>>,
    /// The window index `near` currently covers.
    window: u64,
    len: usize,
}

/// Cycles per calendar window. Wide enough that window turnover is rare,
/// narrow enough that the near heap stays tiny.
const WINDOW_CYCLES: u64 = 256;
/// Ring length (windows); must be a power of two.
const RING_WINDOWS: usize = 1024;

impl ReadyQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self {
            near: std::collections::BinaryHeap::with_capacity(256),
            buckets: vec![Vec::new(); RING_WINDOWS],
            overflow: std::collections::BinaryHeap::new(),
            window: 0,
            len: 0,
        }
    }

    /// Total queued events (including stale duplicates, exactly like the
    /// heap it replaces).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no events are queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Queues a fill event.
    #[inline]
    pub fn push(&mut self, ready: u64, line: u64) {
        self.len += 1;
        let w = ready / WINDOW_CYCLES;
        if w <= self.window {
            self.near.push(std::cmp::Reverse((ready, line)));
        } else if w < self.window + RING_WINDOWS as u64 {
            self.buckets[(w as usize) & (RING_WINDOWS - 1)].push((ready, line));
        } else {
            self.overflow.push(std::cmp::Reverse((ready, line)));
        }
    }

    /// Moves every window up to `cycle`'s into the near heap.
    #[inline]
    fn advance(&mut self, cycle: u64) {
        let target = cycle / WINDOW_CYCLES;
        while self.window < target {
            self.window += 1;
            let bucket = (self.window as usize) & (RING_WINDOWS - 1);
            for (ready, line) in self.buckets[bucket].drain(..) {
                self.near.push(std::cmp::Reverse((ready, line)));
            }
            // Spill entries that have come inside the horizon move into
            // their ring bucket (or the near heap once their window is
            // reached); migrating lazily per window keeps this O(1)-ish.
            while let Some(&std::cmp::Reverse((ready, line))) = self.overflow.peek() {
                if ready / WINDOW_CYCLES >= self.window + RING_WINDOWS as u64 {
                    break;
                }
                self.overflow.pop();
                let w = ready / WINDOW_CYCLES;
                if w <= self.window {
                    self.near.push(std::cmp::Reverse((ready, line)));
                } else {
                    self.buckets[(w as usize) & (RING_WINDOWS - 1)].push((ready, line));
                }
            }
        }
    }

    /// Removes and returns the earliest event whose ready cycle is at or
    /// before `cycle`, in ascending `(ready, line)` order.
    #[inline]
    pub fn pop_ready(&mut self, cycle: u64) -> Option<(u64, u64)> {
        self.advance(cycle);
        match self.near.peek() {
            Some(&std::cmp::Reverse((ready, line))) if ready <= cycle => {
                self.near.pop();
                self.len -= 1;
                Some((ready, line))
            }
            _ => None,
        }
    }
}

impl Default for ReadyQueue {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod ready_queue_tests {
    use super::*;

    /// The calendar queue must pop in exactly the order of the binary heap
    /// it replaced: ascending (ready, line), gated by the probe cycle.
    #[test]
    fn matches_binary_heap_order_under_random_traffic() {
        let mut queue = ReadyQueue::new();
        let mut reference = std::collections::BinaryHeap::new();
        let mut state = 0xDEAD_BEEF_u64;
        let mut cycle = 0u64;
        for _ in 0..100_000 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            match state % 3 {
                0 | 1 => {
                    // Mix of near-future, far-future and past-horizon events.
                    let delta = match (state >> 8) % 4 {
                        0 => (state >> 32) % 8,
                        1 => (state >> 32) % 500,
                        2 => (state >> 32) % 50_000,
                        _ => (state >> 32) % 1_000_000,
                    };
                    let line = (state >> 16) % 1000;
                    queue.push(cycle + delta, line);
                    reference.push(std::cmp::Reverse((cycle + delta, line)));
                }
                _ => {
                    cycle += (state >> 32) % 600;
                    loop {
                        let got = queue.pop_ready(cycle);
                        let want = match reference.peek() {
                            Some(&std::cmp::Reverse((r, l))) if r <= cycle => {
                                reference.pop();
                                Some((r, l))
                            }
                            _ => None,
                        };
                        assert_eq!(got, want, "divergence at cycle {cycle}");
                        if got.is_none() {
                            break;
                        }
                    }
                    assert_eq!(queue.len(), reference.len());
                }
            }
        }
    }

    #[test]
    fn empty_queue_pops_nothing() {
        let mut queue = ReadyQueue::new();
        assert!(queue.is_empty());
        assert_eq!(queue.pop_ready(1_000_000), None);
    }
}
