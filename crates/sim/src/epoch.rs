//! The bounded-lag epoch engine: deterministic sharded execution of
//! multi-core simulations.
//!
//! ## Execution model
//!
//! Every multi-core simulation runs here (single-core runs keep the exact
//! serial loop in [`crate::system`]). Each core becomes a **shard** — the
//! core plus everything private to it: L1/L2, prefetchers, its in-flight
//! fill table and a private copy of the DRAM timing state. Shards advance
//! independently through an **epoch** of `E` cycles against an immutable
//! epoch-start snapshot of the shared state (the LLC contents and the DRAM
//! bank/bus/bandwidth state). Every effect a shard would have had on shared
//! state — LLC probes and fills, DRAM commands, pollution bookkeeping — is
//! recorded as an event. At the epoch boundary all shards rendezvous and the
//! events are applied to the *true* shared state in one deterministic total
//! order, keyed by `(cycle, phase, core, sequence)`.
//!
//! ## Determinism
//!
//! A shard's evolution over an epoch is a pure function of its own state and
//! the epoch-start snapshot. The replay is a pure function of the sorted
//! event batch, and the sort key is total. Worker threads only decide *which
//! thread* evaluates each pure function, so the result is bit-identical for
//! every worker count — including the inline `workers = 1` reference that
//! runs when [`SystemConfig::parallel_cores`] is off. A test in this module
//! asserts that equality, and the `parallel_golden` integration suite pins
//! it across the whole prefetcher registry.
//!
//! ## What bounded lag changes
//!
//! Relative to the old fully interleaved multi-core loop, a shard observes
//! other cores' shared-state effects with up to one epoch of lag: LLC fills
//! from other cores become visible at the next epoch boundary, DRAM bank and
//! bus contention from other cores is reflected in the snapshot its private
//! DRAM view starts from, and the bandwidth quartile a prefetcher sees is
//! the rendezvous-replayed one plus the shard's own traffic. The default
//! epoch length is the bandwidth tracker's window (4×tRC) — the cadence at
//! which the modelled hardware itself broadcasts utilization — so the lag
//! matches the paper's own signalling granularity. Cross-core in-flight fill
//! deduplication is intentionally dropped: two cores demanding one line in
//! the same epoch each pay their own DRAM trip, as two channels' MSHRs would
//! before the coherence point.

use crate::cache::Cache;
use crate::config::SystemConfig;
use crate::dram::Dram;
use crate::stats::{CoreResult, SimResult};
use crate::system::{
    advance_core_closed_form, build_cores, core_skip_allowance, step_core_generic, CoreState,
    Fabric, PendingFill, PollutionTracker, DRAM_REQUEST_OVERHEAD, NO_FILL,
};
use crate::tables::{LineTable, ReadyQueue, Slot};
use dspatch_prefetchers::AnyPrefetcher;
use dspatch_trace::TraceSource;
use dspatch_types::{BandwidthQuartile, LineAddr, PrefetchRequest, Prefetcher};
use std::sync::{mpsc, RwLock};

/// A shard's record of one shared-state effect, replayed at the rendezvous.
#[derive(Debug, Clone, Copy)]
enum SharedOp {
    /// A fill materialized into the shared LLC.
    LlcFill {
        line: LineAddr,
        is_prefetch: bool,
        low_priority: bool,
    },
    /// A demand probe of the shared LLC, with the outcome the shard decided
    /// against its snapshot+overlay view.
    DemandProbe {
        line: LineAddr,
        hit: bool,
        first_use: bool,
    },
    /// A prefetch residence probe of the shared LLC (LRU touch only).
    PrefetchProbe { line: LineAddr },
    /// Pollution bookkeeping for a demand that left the L2.
    ObserveDemand { line: LineAddr, went_to_dram: bool },
    /// A DRAM command, re-executed against the true DRAM for stats and
    /// bandwidth tracking.
    DramAccess {
        line: LineAddr,
        issue_cycle: u64,
        is_prefetch: bool,
    },
}

#[derive(Debug, Clone, Copy)]
struct SharedEvent {
    /// Ordering cycle: the fill-ready cycle for fills, the issue cycle for
    /// core-side operations.
    cycle: u64,
    core: u32,
    /// Per-shard monotone sequence number: preserves program order among one
    /// shard's same-cycle events.
    seq: u64,
    op: SharedOp,
}

/// Total order for replay: fills first within a cycle (the serial loop also
/// materializes fills before stepping cores), then core operations in
/// `(core, program-order)` — deterministic regardless of which worker thread
/// produced which event, or when.
fn sort_key(ev: &SharedEvent) -> (u64, u8, u64, u64, u64) {
    match ev.op {
        SharedOp::LlcFill { line, .. } => (ev.cycle, 0, line.as_u64(), u64::from(ev.core), ev.seq),
        _ => (ev.cycle, 1, u64::from(ev.core), ev.seq, 0),
    }
}

/// Shared-LLC knowledge a shard accumulates during an epoch, layered over
/// the epoch-start snapshot: the used/prefetched bits of lines it probed or
/// filled. Cleared at every epoch boundary (the rendezvous folds the truth
/// back into the base).
#[derive(Debug, Clone, Copy)]
struct OverlayMeta {
    prefetched: bool,
    used: bool,
}

const NO_META: OverlayMeta = OverlayMeta {
    prefetched: false,
    used: false,
};

/// The private fabric state of one shard.
struct ShardFab {
    /// In-flight DRAM fills issued by this shard.
    pending: LineTable<PendingFill>,
    ready_queue: ReadyQueue,
    /// Private copy of the DRAM timing model, re-seeded from the true DRAM
    /// at each epoch start: own traffic is visible immediately, other
    /// shards' with one epoch of lag.
    dram_view: Dram,
    overlay: LineTable<OverlayMeta>,
    log: Vec<SharedEvent>,
    seq: u64,
    l2_latency: u64,
    llc_latency: u64,
    prefetch_mshrs: usize,
}

/// One core plus its private fabric, advanced to `cycle`.
struct Shard {
    core: CoreState,
    cycle: u64,
    fab: ShardFab,
}

/// The authoritative shared state, mutated only at rendezvous.
struct TrueShared {
    llc: Cache,
    dram: Dram,
    pollution: PollutionTracker,
}

#[inline]
fn push_event(log: &mut Vec<SharedEvent>, seq: &mut u64, cycle: u64, core: usize, op: SharedOp) {
    log.push(SharedEvent {
        cycle,
        core: core as u32,
        seq: *seq,
        op,
    });
    *seq += 1;
}

/// Resolves a demand LLC probe against the shard's overlay-then-snapshot
/// view, returning `(hit, first_use)` and recording the used bit in the
/// overlay so a second probe in the same epoch is no longer a first use.
fn probe_llc_demand(
    overlay: &mut LineTable<OverlayMeta>,
    base: &Cache,
    line: LineAddr,
) -> (bool, bool) {
    match overlay.slot(line.as_u64()) {
        Slot::Occupied(meta) => {
            let first_use = meta.prefetched && !meta.used;
            meta.used = true;
            (true, first_use)
        }
        Slot::Vacant(vacant) => {
            if let Some(meta) = base.peek_meta(line) {
                let first_use = meta.prefetched && !meta.used;
                vacant.insert(OverlayMeta {
                    prefetched: meta.prefetched,
                    used: true,
                });
                (true, first_use)
            } else {
                (false, false)
            }
        }
    }
}

/// A shard's window onto the shared fabric for the duration of one stepped
/// cycle: its private state plus the immutable epoch-start LLC snapshot.
struct ShardView<'a> {
    fab: &'a mut ShardFab,
    base_llc: &'a Cache,
    core_id: usize,
}

impl Fabric for ShardView<'_> {
    fn quartile(&self) -> BandwidthQuartile {
        self.fab.dram_view.bandwidth_quartile()
    }

    fn access_beyond_l1(
        &mut self,
        core: &mut CoreState,
        line: LineAddr,
        cycle: u64,
        count_coverage: bool,
    ) -> (u64, bool) {
        let l2_latency = self.fab.l2_latency;
        let llc_latency = self.fab.llc_latency;

        // L2 probe: fully private, exact.
        let (l2_hit, l2_was_unused_prefetch) = core.l2.demand_lookup_first_use(line);
        if l2_hit {
            if count_coverage && l2_was_unused_prefetch {
                core.accounting.covered += 1;
                core.accounting.prefetches_used += 1;
            }
            return (l2_latency, true);
        }

        // LLC probe against snapshot + overlay; the real probe replays at
        // the rendezvous with the outcome decided here.
        let (llc_hit, llc_first_use) = probe_llc_demand(&mut self.fab.overlay, self.base_llc, line);
        push_event(
            &mut self.fab.log,
            &mut self.fab.seq,
            cycle,
            self.core_id,
            SharedOp::DemandProbe {
                line,
                hit: llc_hit,
                first_use: llc_first_use,
            },
        );
        if llc_hit {
            if count_coverage && llc_first_use {
                core.accounting.covered += 1;
                core.accounting.prefetches_used += 1;
            }
            core.l2.fill(line, false, false);
            core.l1.fill(line, false, false);
            push_event(
                &mut self.fab.log,
                &mut self.fab.seq,
                cycle,
                self.core_id,
                SharedOp::ObserveDemand {
                    line,
                    went_to_dram: false,
                },
            );
            return (l2_latency + llc_latency, false);
        }

        // In-flight fill (this shard's own) or a fresh DRAM access.
        let issue_cycle = cycle + l2_latency + llc_latency + DRAM_REQUEST_OVERHEAD;
        match self.fab.pending.slot(line.as_u64()) {
            Slot::Occupied(fill) => {
                let was_prefetch = fill.is_prefetch && !fill.used_by_demand;
                fill.used_by_demand = true;
                fill.fill_l1 = true;
                fill.fill_l2 = true;
                fill.core = core.id;
                let old_ready = fill.ready;
                let promoted_ready = if was_prefetch && old_ready > issue_cycle {
                    let reissued = self.fab.dram_view.access(line, issue_cycle, false);
                    push_event(
                        &mut self.fab.log,
                        &mut self.fab.seq,
                        cycle,
                        self.core_id,
                        SharedOp::DramAccess {
                            line,
                            issue_cycle,
                            is_prefetch: false,
                        },
                    );
                    fill.ready = fill.ready.min(reissued);
                    self.fab.ready_queue.push(fill.ready, line.as_u64());
                    fill.ready
                } else {
                    old_ready
                };
                if count_coverage && was_prefetch {
                    core.accounting.covered += 1;
                    core.accounting.prefetches_used += 1;
                }
                push_event(
                    &mut self.fab.log,
                    &mut self.fab.seq,
                    cycle,
                    self.core_id,
                    SharedOp::ObserveDemand {
                        line,
                        went_to_dram: false,
                    },
                );
                let wait = promoted_ready.saturating_sub(cycle).max(1);
                (l2_latency + llc_latency + wait, false)
            }
            Slot::Vacant(vacant) => {
                if count_coverage {
                    core.accounting.uncovered += 1;
                }
                push_event(
                    &mut self.fab.log,
                    &mut self.fab.seq,
                    cycle,
                    self.core_id,
                    SharedOp::ObserveDemand {
                        line,
                        went_to_dram: true,
                    },
                );
                let ready = self.fab.dram_view.access(line, issue_cycle, false);
                push_event(
                    &mut self.fab.log,
                    &mut self.fab.seq,
                    cycle,
                    self.core_id,
                    SharedOp::DramAccess {
                        line,
                        issue_cycle,
                        is_prefetch: false,
                    },
                );
                vacant.insert(PendingFill {
                    ready,
                    core: core.id,
                    issuer: core.id,
                    is_prefetch: false,
                    fill_l1: true,
                    fill_l2: true,
                    low_priority: false,
                    used_by_demand: true,
                });
                self.fab.ready_queue.push(ready, line.as_u64());
                (
                    l2_latency
                        + llc_latency
                        + DRAM_REQUEST_OVERHEAD
                        + ready.saturating_sub(issue_cycle),
                    false,
                )
            }
        }
    }

    fn issue_l2_prefetch(
        &mut self,
        core: &mut CoreState,
        request: &PrefetchRequest,
        cycle: u64,
    ) -> bool {
        if core.inflight_prefetches >= self.fab.prefetch_mshrs {
            return false;
        }
        let line = request.line;
        let key = line.as_u64();
        let fill_l2 = request.fill_level != dspatch_types::FillLevel::Llc;
        if core.l2.prefetch_lookup(line) {
            return true;
        }
        let Slot::Vacant(vacant) = self.fab.pending.slot(key) else {
            return true;
        };
        core.accounting.prefetches_issued += 1;
        // On-die residence as this shard can see it: its own epoch fills
        // plus the epoch-start snapshot.
        let resident = self.fab.overlay.get_mut(key).is_some() || self.base_llc.contains(line);
        push_event(
            &mut self.fab.log,
            &mut self.fab.seq,
            cycle,
            self.core_id,
            SharedOp::PrefetchProbe { line },
        );
        let ready = if resident {
            cycle + self.fab.llc_latency
        } else {
            let issue_cycle = cycle + DRAM_REQUEST_OVERHEAD;
            let r = self.fab.dram_view.access(line, issue_cycle, true);
            push_event(
                &mut self.fab.log,
                &mut self.fab.seq,
                cycle,
                self.core_id,
                SharedOp::DramAccess {
                    line,
                    issue_cycle,
                    is_prefetch: true,
                },
            );
            r
        };
        vacant.insert(PendingFill {
            ready,
            core: core.id,
            issuer: core.id,
            is_prefetch: true,
            fill_l1: false,
            fill_l2,
            low_priority: request.low_priority,
            used_by_demand: false,
        });
        core.inflight_prefetches += 1;
        self.fab.ready_queue.push(ready, key);
        true
    }
}

/// Materializes this shard's DRAM fills that are ready by `cycle`: fills the
/// private L1/L2 immediately and logs the shared-LLC fill for replay,
/// mirroring the serial engine's `drain_ready_fills` per-line logic.
fn drain_shard_fills(core: &mut CoreState, fab: &mut ShardFab, cycle: u64) {
    while let Some((_, line)) = fab.ready_queue.pop_ready(cycle) {
        let Some(fill) = fab.pending.remove(line) else {
            continue;
        };
        if fill.ready > cycle {
            // A duplicate queue entry from a superseded request; requeue.
            fab.pending.insert(line, fill);
            fab.ready_queue.push(fill.ready, line);
            continue;
        }
        if fill.is_prefetch {
            // Per-shard pending tables: the issuer is always this core.
            core.inflight_prefetches -= 1;
        }
        let line_addr = LineAddr::new(line);
        let is_prefetch = fill.is_prefetch && !fill.used_by_demand;
        if fill.fill_l2 {
            core.l2.fill(line_addr, is_prefetch, fill.low_priority);
        }
        if fill.fill_l1 {
            core.l1.fill(line_addr, is_prefetch, fill.low_priority);
        }
        push_event(
            &mut fab.log,
            &mut fab.seq,
            fill.ready,
            core.id,
            SharedOp::LlcFill {
                line: line_addr,
                is_prefetch,
                low_priority: fill.low_priority,
            },
        );
        // The overlay learns the fill so later probes this epoch see it.
        match fab.overlay.slot(line) {
            Slot::Occupied(meta) => {
                if !is_prefetch {
                    meta.used = true;
                }
            }
            Slot::Vacant(vacant) => vacant.insert(OverlayMeta {
                prefetched: is_prefetch,
                used: !is_prefetch,
            }),
        }
    }
}

impl Shard {
    fn new(core: CoreState, config: &SystemConfig, dram: &Dram) -> Self {
        let pending_capacity =
            (config.prefetch_mshrs + config.core.load_buffer_entries + 16).max(128);
        Self {
            core,
            cycle: 0,
            fab: ShardFab {
                pending: LineTable::with_capacity(pending_capacity, NO_FILL),
                ready_queue: ReadyQueue::new(),
                dram_view: dram.clone(),
                overlay: LineTable::with_capacity(256, NO_META),
                log: Vec::new(),
                seq: 0,
                l2_latency: config.l2.latency,
                llc_latency: config.llc.latency,
                prefetch_mshrs: config.prefetch_mshrs,
            },
        }
    }

    /// Re-seeds the snapshot state for a new epoch.
    fn begin_epoch(&mut self, dram: &Dram) {
        self.fab.dram_view.copy_state_from(dram);
        self.fab.overlay.clear();
    }

    /// Advances the shard to exactly `end` (or until the core finishes),
    /// using the same per-cycle order as the serial engine: fills, DRAM
    /// window advance, core step, then exact closed-form skipping capped at
    /// the epoch boundary.
    fn run_epoch(&mut self, end: u64, base_llc: &Cache, config: &SystemConfig) {
        let width = config.core.width;
        let rob_entries = config.core.rob_entries;
        while !self.core.finished && self.cycle < end {
            self.cycle += 1;
            let cycle = self.cycle;
            drain_shard_fills(&mut self.core, &mut self.fab, cycle);
            self.fab.dram_view.advance(cycle);
            {
                let mut view = ShardView {
                    fab: &mut self.fab,
                    base_llc,
                    core_id: self.core.id,
                };
                step_core_generic(&mut self.core, &mut view, config, cycle);
            }
            if config.cycle_skipping && !self.core.finished && self.cycle < end {
                let allowance = core_skip_allowance(&self.core, cycle, config);
                let skip = allowance.min(end - cycle);
                if skip > 0 {
                    advance_core_closed_form(&mut self.core, cycle, skip, width, rob_entries);
                    self.cycle += skip;
                }
            }
        }
        if !self.core.finished {
            debug_assert_eq!(self.cycle, end, "unfinished shards stop at the boundary");
        }
    }
}

/// Runs every unfinished shard in `shards` through the epoch ending at
/// `end`, appending their event logs to `logs`. Returns the number of still
/// unfinished shards and the earliest cycle at which any of them does
/// non-trivial work again (`u64::MAX` if none) — the epoch-jump hint.
fn epoch_over_shards(
    shards: &mut [Shard],
    base: &TrueShared,
    config: &SystemConfig,
    end: u64,
    logs: &mut Vec<SharedEvent>,
) -> (usize, u64) {
    let mut unfinished = 0;
    let mut wake_hint = u64::MAX;
    for shard in shards {
        if shard.core.finished {
            continue;
        }
        shard.begin_epoch(&base.dram);
        shard.run_epoch(end, &base.llc, config);
        logs.append(&mut shard.fab.log);
        if !shard.core.finished {
            unfinished += 1;
            let allowance = core_skip_allowance(&shard.core, end, config);
            wake_hint = wake_hint.min(end.saturating_add(1).saturating_add(allowance));
        }
    }
    (unfinished, wake_hint)
}

fn apply_event(shared: &mut TrueShared, ev: &SharedEvent) {
    match ev.op {
        SharedOp::LlcFill {
            line,
            is_prefetch,
            low_priority,
        } => {
            if let Some(eviction) = shared.llc.fill(line, is_prefetch, low_priority) {
                if is_prefetch {
                    shared.pollution.record_prefetch_victim(eviction.line);
                }
            }
        }
        SharedOp::DemandProbe {
            line,
            hit,
            first_use,
        } => shared.llc.record_demand_probe(line, hit, first_use),
        SharedOp::PrefetchProbe { line } => {
            let _ = shared.llc.prefetch_lookup(line);
        }
        SharedOp::ObserveDemand { line, went_to_dram } => {
            shared.pollution.observe_demand(line, went_to_dram);
        }
        SharedOp::DramAccess {
            line,
            issue_cycle,
            is_prefetch,
        } => {
            let _ = shared.dram.access(line, issue_cycle, is_prefetch);
        }
    }
}

/// Sorts the accumulated events, applies everything up to `end` to the true
/// shared state in the deterministic total order, and keeps the rest (e.g.
/// dependent accesses whose issue cycle lands beyond the boundary) for a
/// later boundary.
fn rendezvous(carry: &mut Vec<SharedEvent>, shared: &mut TrueShared, end: u64) {
    carry.sort_by_key(sort_key);
    let split = carry.partition_point(|ev| ev.cycle <= end);
    for ev in carry.drain(..split) {
        apply_event(shared, &ev);
    }
    shared.dram.advance(end);
}

/// Applies every remaining carried event (run teardown).
fn flush_carry(carry: &mut Vec<SharedEvent>, shared: &mut TrueShared) {
    carry.sort_by_key(sort_key);
    for ev in carry.drain(..) {
        apply_event(shared, &ev);
    }
}

/// Chooses the next epoch boundary: at least one full epoch ahead, jumped
/// further when every unfinished shard is provably idle until `wake_hint`
/// (an event-free epoch would otherwise just spin the rendezvous). The hint
/// is computed from deterministic shard state, so the boundary sequence —
/// and therefore the result — stays worker-count independent.
fn next_epoch_end(t_end: u64, epoch_cycles: u64, wake_hint: u64, config: &SystemConfig) -> u64 {
    let base = t_end.saturating_add(epoch_cycles);
    let mut end = if config.cycle_skipping && wake_hint != u64::MAX && wake_hint > base {
        wake_hint
    } else {
        base
    };
    if config.max_cycles > 0 {
        // Never jump past the safety valve's trigger point.
        end = end.min(config.max_cycles.max(t_end + 1));
    }
    end
}

fn force_finish(shards: &mut [Shard]) {
    for shard in shards {
        if !shard.core.finished {
            shard.core.finished = true;
            shard.core.finish_cycle = shard.cycle.max(1);
        }
    }
}

/// How many worker threads the sharded engine uses for this run.
fn resolve_workers(config: &SystemConfig, shards: usize) -> usize {
    if !config.parallel_cores {
        return 1;
    }
    let auto = std::thread::available_parallelism().map_or(1, |n| n.get());
    let requested = if config.parallel_workers == 0 {
        auto
    } else {
        config.parallel_workers
    };
    requested.clamp(1, shards)
}

/// The single-threaded reference loop: identical epoch/rendezvous schedule,
/// no threads.
fn run_inline(
    shards: &mut [Shard],
    shared: &mut TrueShared,
    config: &SystemConfig,
    epoch_cycles: u64,
) {
    let mut carry: Vec<SharedEvent> = Vec::new();
    let mut t_end = 0u64;
    let mut wake_hint = u64::MAX;
    loop {
        if shards.iter().all(|s| s.core.finished) {
            flush_carry(&mut carry, shared);
            return;
        }
        if config.max_cycles > 0 && t_end >= config.max_cycles {
            force_finish(shards);
            flush_carry(&mut carry, shared);
            return;
        }
        let end = next_epoch_end(t_end, epoch_cycles, wake_hint, config);
        let (_, hint) = epoch_over_shards(shards, shared, config, end, &mut carry);
        rendezvous(&mut carry, shared, end);
        wake_hint = hint;
        t_end = end;
    }
}

/// One message per epoch from main to a worker.
enum Job {
    Epoch { end: u64 },
    ForceFinish,
    Shutdown,
}

struct Reply {
    logs: Vec<SharedEvent>,
    unfinished: usize,
    wake_hint: u64,
}

/// The threaded engine: shards are distributed round-robin onto `workers`
/// scoped threads that own them for the whole run. Workers read the shared
/// state through an `RwLock` during the parallel phase; the main thread
/// takes the write lock only after collecting every reply, so the lock is
/// never contended across phases.
fn run_threaded(
    shards: Vec<Shard>,
    shared: TrueShared,
    config: &SystemConfig,
    epoch_cycles: u64,
    workers: usize,
) -> (Vec<Shard>, TrueShared) {
    let total_shards = shards.len();
    let mut buckets: Vec<Vec<Shard>> = (0..workers).map(|_| Vec::new()).collect();
    for (index, shard) in shards.into_iter().enumerate() {
        buckets[index % workers].push(shard);
    }
    let shared_lock = RwLock::new(shared);
    let mut returned: Vec<Shard> = Vec::with_capacity(total_shards);

    std::thread::scope(|scope| {
        let (reply_tx, reply_rx) = mpsc::channel::<Reply>();
        let mut job_txs = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for bucket in buckets {
            let (job_tx, job_rx) = mpsc::channel::<Job>();
            job_txs.push(job_tx);
            let reply_tx = reply_tx.clone();
            let shared_ref = &shared_lock;
            handles.push(scope.spawn(move || {
                let mut shards = bucket;
                loop {
                    match job_rx.recv() {
                        Ok(Job::Epoch { end }) => {
                            let mut logs = Vec::new();
                            let (unfinished, wake_hint) = {
                                let guard = shared_ref.read().expect("shared state poisoned");
                                epoch_over_shards(&mut shards, &guard, config, end, &mut logs)
                            };
                            let _ = reply_tx.send(Reply {
                                logs,
                                unfinished,
                                wake_hint,
                            });
                        }
                        Ok(Job::ForceFinish) => {
                            force_finish(&mut shards);
                            let _ = reply_tx.send(Reply {
                                logs: Vec::new(),
                                unfinished: 0,
                                wake_hint: u64::MAX,
                            });
                        }
                        Ok(Job::Shutdown) | Err(_) => return shards,
                    }
                }
            }));
        }

        let mut carry: Vec<SharedEvent> = Vec::new();
        let mut t_end = 0u64;
        let mut wake_hint = u64::MAX;
        let mut unfinished_total = total_shards;
        loop {
            if unfinished_total == 0 {
                let mut guard = shared_lock.write().expect("shared state poisoned");
                flush_carry(&mut carry, &mut guard);
                break;
            }
            if config.max_cycles > 0 && t_end >= config.max_cycles {
                for tx in &job_txs {
                    let _ = tx.send(Job::ForceFinish);
                }
                for _ in 0..workers {
                    let _ = reply_rx.recv().expect("worker died mid-run");
                }
                let mut guard = shared_lock.write().expect("shared state poisoned");
                flush_carry(&mut carry, &mut guard);
                break;
            }
            let end = next_epoch_end(t_end, epoch_cycles, wake_hint, config);
            for tx in &job_txs {
                let _ = tx.send(Job::Epoch { end });
            }
            let mut sum_unfinished = 0;
            let mut hint = u64::MAX;
            for _ in 0..workers {
                let mut reply = reply_rx.recv().expect("worker died mid-run");
                carry.append(&mut reply.logs);
                sum_unfinished += reply.unfinished;
                hint = hint.min(reply.wake_hint);
            }
            {
                let mut guard = shared_lock.write().expect("shared state poisoned");
                rendezvous(&mut carry, &mut guard, end);
            }
            unfinished_total = sum_unfinished;
            wake_hint = hint;
            t_end = end;
        }

        for tx in &job_txs {
            let _ = tx.send(Job::Shutdown);
        }
        for handle in handles {
            returned.extend(handle.join().expect("worker panicked"));
        }
    });

    returned.sort_by_key(|shard| shard.core.id);
    let shared = shared_lock.into_inner().expect("shared state poisoned");
    (returned, shared)
}

fn assemble(mut shards: Vec<Shard>, shared: TrueShared, config: &SystemConfig) -> SimResult {
    let cycles = shards
        .iter()
        .map(|s| s.core.finish_cycle.max(1))
        .max()
        .unwrap_or(1);
    let cores = shards
        .iter_mut()
        .map(|shard| {
            let core = &mut shard.core;
            core.accounting.finalize();
            CoreResult {
                workload: core.workload.clone(),
                prefetcher: core.l2_prefetcher.name().to_owned(),
                instructions: core.instructions,
                finish_cycle: core.finish_cycle.max(1),
                l1: *core.l1.stats(),
                l2: *core.l2.stats(),
                accounting: core.accounting,
            }
        })
        .collect();
    SimResult {
        cores,
        llc: *shared.llc.stats(),
        dram: *shared.dram.stats(),
        pollution: shared.pollution.finish(),
        cycles,
        cache_geometry: vec![
            config.l1.geometry(),
            config.l2.geometry(),
            config.llc.geometry(),
        ],
        sampling: None,
    }
}

/// Runs a multi-core simulation on the epoch engine. Called by
/// [`crate::system::SimulationBuilder::run`] for every simulation with more
/// than one core; the worker-thread count is resolved from
/// [`SystemConfig::parallel_cores`] / [`SystemConfig::parallel_workers`] and
/// never changes the result.
pub(crate) fn run_sharded(
    config: SystemConfig,
    core_setup: Vec<(Box<dyn TraceSource>, AnyPrefetcher)>,
) -> SimResult {
    let cores = build_cores(&config, core_setup);
    let true_dram = Dram::new(config.dram, config.core.clock_mhz);
    let epoch_cycles = if config.parallel_epoch_cycles > 0 {
        config.parallel_epoch_cycles
    } else {
        // The hardware's own shared-state broadcast cadence: the bandwidth
        // tracker window (4×tRC). Matches `SystemConfig::default_epoch_cycles`
        // (asserted by a unit test) — validated configs store it explicitly.
        config.default_epoch_cycles()
    };
    let mut shards: Vec<Shard> = cores
        .into_iter()
        .map(|core| Shard::new(core, &config, &true_dram))
        .collect();
    let mut shared = TrueShared {
        llc: Cache::new(config.llc.clone()),
        dram: true_dram,
        pollution: PollutionTracker::default(),
    };
    let workers = resolve_workers(&config, shards.len());
    if workers <= 1 {
        run_inline(&mut shards, &mut shared, &config, epoch_cycles);
    } else {
        let (returned, returned_shared) = run_threaded(
            std::mem::take(&mut shards),
            shared,
            &config,
            epoch_cycles,
            workers,
        );
        shards = returned;
        shared = returned_shared;
    }
    assemble(shards, shared, &config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::Machine;
    use dspatch_prefetchers::{StreamConfig, StreamPrefetcher};
    use dspatch_trace::{
        IntoTraceSource, PatternGenerator, PointerChaseGen, SpatialPatternGen, StreamGen, Trace,
    };
    use dspatch_types::NullPrefetcher;

    /// A heterogeneous 4-core mix: two streamers, a spatial workload and a
    /// pointer chase, under three different prefetchers.
    fn mixed_setup(accesses: usize) -> Vec<(Box<dyn TraceSource>, AnyPrefetcher)> {
        let stream = |seed: u64| {
            Trace::new(
                format!("stream-{seed}"),
                StreamGen {
                    streams: 2,
                    gap: 40,
                    store_percent: 10,
                }
                .generate_records(seed, accesses),
            )
        };
        let spatial = Trace::new(
            "spatial",
            SpatialPatternGen::default().generate_records(7, accesses),
        );
        let chase = Trace::new(
            "chase",
            PointerChaseGen {
                nodes: 1 << 14,
                node_bytes: 192,
                gap: 12,
            }
            .generate_records(9, accesses),
        );
        vec![
            (
                stream(1).into_trace_source(),
                StreamPrefetcher::new(StreamConfig::default()).into(),
            ),
            (stream(2).into_trace_source(), NullPrefetcher::new().into()),
            (
                spatial.into_trace_source(),
                StreamPrefetcher::new(StreamConfig {
                    degree: 8,
                    ..StreamConfig::default()
                })
                .into(),
            ),
            (chase.into_trace_source(), NullPrefetcher::new().into()),
        ]
    }

    fn run_with_workers(workers: usize, parallel: bool, accesses: usize) -> SimResult {
        let mut config = SystemConfig::multi_programmed();
        config.parallel_cores = parallel;
        config.parallel_workers = workers;
        run_sharded(config, mixed_setup(accesses))
    }

    #[test]
    fn worker_count_never_changes_the_result() {
        let serial = run_with_workers(0, false, 1_200);
        for workers in [1, 2, 3, 4] {
            let parallel = run_with_workers(workers, true, 1_200);
            assert_eq!(
                serial, parallel,
                "epoch engine must be bit-identical with {workers} workers"
            );
        }
    }

    #[test]
    fn explicit_epoch_length_is_deterministic_across_workers() {
        for epoch_cycles in [1u64, 64, 5_000] {
            let run = |workers: usize| {
                let mut config = SystemConfig::multi_programmed();
                config.parallel_cores = true;
                config.parallel_workers = workers;
                config.parallel_epoch_cycles = epoch_cycles;
                run_sharded(config, mixed_setup(600))
            };
            let one = run(1);
            let four = run(4);
            assert_eq!(
                one, four,
                "epoch length {epoch_cycles} must not break determinism"
            );
        }
    }

    #[test]
    fn epoch_engine_stays_close_to_the_interleaved_reference() {
        // The bounded-lag semantics are a modelling change, not a bug: pin
        // the drift against the fully interleaved single-threaded engine to
        // a tolerance so a regression that breaks contention modelling (or
        // double-applies shared traffic) fails loudly. Shorter epochs mean
        // less contention lag, so the pin tightens as the epoch shrinks.
        let legacy = Machine::new(SystemConfig::multi_programmed(), mixed_setup(1_500)).run();
        for (epoch_cycles, tolerance) in [(128u64, 0.5), (0u64, 0.5)] {
            let mut config = SystemConfig::multi_programmed();
            config.parallel_epoch_cycles = epoch_cycles;
            let epoch = run_sharded(config, mixed_setup(1_500));
            assert_eq!(legacy.cores.len(), epoch.cores.len());
            let band = (1.0 - tolerance)..(1.0 + tolerance);
            for (l, e) in legacy.cores.iter().zip(&epoch.cores) {
                assert_eq!(l.instructions, e.instructions);
                let ratio = e.ipc() / l.ipc();
                assert!(
                    band.contains(&ratio),
                    "core {} drifted too far from the interleaved reference \
                     (epoch {epoch_cycles}): epoch IPC {:.4} vs legacy IPC {:.4}",
                    l.workload,
                    e.ipc(),
                    l.ipc()
                );
            }
            // DRAM traffic is conserved, not just bounded: every shard trip
            // replays against the true DRAM exactly once, so the command
            // stream should match the reference closely even where timing
            // drifts.
            let dram_ratio =
                epoch.dram.cas_commands as f64 / legacy.dram.cas_commands.max(1) as f64;
            assert!(
                (0.9..1.1).contains(&dram_ratio),
                "DRAM traffic drifted (epoch {epoch_cycles}): epoch {} vs legacy {}",
                epoch.dram.cas_commands,
                legacy.dram.cas_commands
            );
        }
    }

    #[test]
    fn max_cycles_valve_terminates_parallel_runs() {
        let mut config = SystemConfig::multi_programmed();
        config.parallel_cores = true;
        config.parallel_workers = 4;
        config.max_cycles = 10_000;
        let result = run_sharded(config, mixed_setup(200_000));
        assert!(result.cycles <= 10_000 + 1);
        assert_eq!(result.cores.len(), 4);
    }

    #[test]
    fn cycle_skipping_does_not_change_parallel_results() {
        let run = |skipping: bool| {
            let mut config = SystemConfig::multi_programmed();
            config.parallel_cores = true;
            config.parallel_workers = 2;
            config.cycle_skipping = skipping;
            run_sharded(config, mixed_setup(700))
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn effective_workers_respects_the_gate_and_core_count() {
        let mut config = SystemConfig::multi_programmed();
        config.parallel_cores = false;
        assert_eq!(config.effective_workers(), 1);
        config.parallel_cores = true;
        config.parallel_workers = 8;
        assert_eq!(config.effective_workers(), config.cores.min(8));
        config.parallel_workers = 1;
        assert_eq!(config.effective_workers(), 1);
    }
}
