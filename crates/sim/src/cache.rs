//! Set-associative caches with prefetch metadata.
//!
//! Every level of the hierarchy uses the same structure: physically-indexed
//! sets of ways with true-LRU replacement. Each resident line carries the
//! metadata the coverage/accuracy/pollution accounting needs: whether it was
//! brought in by a prefetch, whether a demand access has used it since, and
//! whether it was inserted at low priority (DSPatch's pollution-bounding
//! hint, paper Section 3.6). Low-priority fills are inserted near the LRU
//! position, standing in for the prefetch-aware dead-block-oriented LLC
//! policy of Table 2.

use dspatch_types::snapshot::{SnapshotError, SnapshotState, StateReader, StateWriter};
use dspatch_types::{LineAddr, CACHE_LINE_BYTES};
use serde::{Deserialize, Serialize};

/// Geometry and latency of one cache level.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Level name ("L1D", "L2", "LLC") used in reports.
    pub name: String,
    /// Capacity in bytes.
    pub size_bytes: usize,
    /// Associativity.
    pub ways: usize,
    /// Round-trip hit latency in core cycles.
    pub latency: u64,
    /// Miss-status-holding registers (bounds outstanding misses).
    pub mshrs: usize,
}

impl CacheConfig {
    /// Creates a cache configuration.
    pub fn new(name: &str, size_bytes: usize, ways: usize, latency: u64, mshrs: usize) -> Self {
        Self {
            name: name.to_owned(),
            size_bytes,
            ways,
            latency,
            mshrs,
        }
    }

    /// Number of sets implied by the geometry, rounded **up** to a power of
    /// two so set selection is a mask instead of a `%` on the lookup hot
    /// path. All of the paper's geometries are powers of two already; an
    /// exotic non-power-of-two configuration gains a little extra capacity
    /// rather than being rejected.
    pub fn sets(&self) -> usize {
        (self.size_bytes / CACHE_LINE_BYTES / self.ways)
            .max(1)
            .next_power_of_two()
    }

    /// The geometry the cache will actually be built with, including the
    /// effect of the power-of-two set rounding.
    pub fn geometry(&self) -> CacheGeometry {
        let sets = self.sets();
        let effective_bytes = sets * self.ways * CACHE_LINE_BYTES;
        CacheGeometry {
            name: self.name.clone(),
            requested_bytes: self.size_bytes,
            ways: self.ways,
            sets,
            effective_bytes,
            rounded: effective_bytes != self.size_bytes,
        }
    }

    /// Validates the geometry and returns what will actually be built.
    ///
    /// Set counts that are not powers of two are rounded **up** by
    /// [`CacheConfig::sets`]; the returned [`CacheGeometry`] makes that
    /// silent capacity inflation visible (`rounded` plus the effective
    /// sets/bytes), and the same record is echoed into
    /// [`crate::stats::SimResult::cache_geometry`] so no report can quote a
    /// requested capacity the simulation didn't actually model.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid parameter.
    pub fn validate(&self) -> Result<CacheGeometry, String> {
        if self.size_bytes < CACHE_LINE_BYTES {
            return Err(format!("{}: capacity smaller than one line", self.name));
        }
        if self.ways == 0 {
            return Err(format!("{}: associativity must be positive", self.name));
        }
        if !self.size_bytes.is_multiple_of(CACHE_LINE_BYTES * self.ways) {
            return Err(format!(
                "{}: capacity must be a multiple of ways x line size",
                self.name
            ));
        }
        Ok(self.geometry())
    }
}

/// The effective geometry of one cache level: what [`Cache::new`] actually
/// builds after [`CacheConfig::sets`] rounds the set count up to a power of
/// two. Returned by [`CacheConfig::validate`] and echoed per level into
/// [`crate::stats::SimResult`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheGeometry {
    /// Level name from the configuration ("L1D", "L2", "LLC").
    pub name: String,
    /// Capacity the configuration asked for, in bytes.
    pub requested_bytes: usize,
    /// Associativity.
    pub ways: usize,
    /// Effective (power-of-two) set count.
    pub sets: usize,
    /// Capacity actually modeled: `sets * ways * 64 B`.
    pub effective_bytes: usize,
    /// Whether rounding changed the capacity (always `false` for the
    /// paper's own power-of-two geometries).
    pub rounded: bool,
}

/// Metadata attached to a resident line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LineMeta {
    /// The line was filled by a prefetch (and not yet replaced by a demand
    /// fill).
    pub prefetched: bool,
    /// A demand access touched the line after it was filled.
    pub used: bool,
    /// The line was filled at low replacement priority.
    pub low_priority: bool,
}

/// Sentinel tag marking an unoccupied way. Real tags are line numbers
/// (byte address >> 6), which cannot reach `u64::MAX`.
const EMPTY_TAG: u64 = u64::MAX;

/// `prefetched` flag inside a packed stamp word.
const STAMP_PREFETCHED: u64 = 0b100;
/// `used` flag inside a packed stamp word.
const STAMP_USED: u64 = 0b010;
/// `low_priority` flag inside a packed stamp word.
const STAMP_LOW_PRIORITY: u64 = 0b001;
/// Bit position of the LRU clock inside a packed stamp word.
const STAMP_CLOCK_SHIFT: u32 = 3;

/// Packs an LRU clock value and a [`LineMeta`] into one word. Keeping both
/// in a single slab means a lookup hit or fill touches two arrays (tags +
/// stamps) instead of three — on the per-request hot path the simulator's
/// own memory traffic is what dominates.
#[inline]
const fn pack_stamp(clock: u64, meta: LineMeta) -> u64 {
    (clock << STAMP_CLOCK_SHIFT)
        | if meta.prefetched { STAMP_PREFETCHED } else { 0 }
        | if meta.used { STAMP_USED } else { 0 }
        | if meta.low_priority {
            STAMP_LOW_PRIORITY
        } else {
            0
        }
}

#[inline]
const fn unpack_meta(stamp: u64) -> LineMeta {
    LineMeta {
        prefetched: stamp & STAMP_PREFETCHED != 0,
        used: stamp & STAMP_USED != 0,
        low_priority: stamp & STAMP_LOW_PRIORITY != 0,
    }
}

/// An eviction produced by a fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Eviction {
    /// The evicted line.
    pub line: LineAddr,
    /// Its metadata at eviction time.
    pub meta: LineMeta,
}

/// Hit/miss and prefetch-usefulness counters for one cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Demand lookups that hit.
    pub demand_hits: u64,
    /// Demand lookups that missed.
    pub demand_misses: u64,
    /// Lines filled by demand misses.
    pub demand_fills: u64,
    /// Lines filled by prefetches.
    pub prefetch_fills: u64,
    /// Demand hits on lines that were prefetched and not yet used.
    pub prefetch_first_uses: u64,
    /// Prefetched lines evicted without ever being used.
    pub prefetch_unused_evictions: u64,
}

impl CacheStats {
    /// Demand miss ratio in `[0, 1]`.
    pub fn miss_ratio(&self) -> f64 {
        let total = self.demand_hits + self.demand_misses;
        if total == 0 {
            0.0
        } else {
            self.demand_misses as f64 / total as f64
        }
    }
}

/// A set-associative, true-LRU cache.
///
/// Storage is a structure-of-arrays `sets × ways` arena (set-major) with a
/// power-of-two set count: the tag array is a dense `u64` slab, so a lookup
/// is one mask, one multiply and a scan of `ways` adjacent 8-byte tags (one
/// or two cache lines of simulator memory), touching the LRU/metadata
/// arrays only on a hit. Unoccupied ways hold [`EMPTY_TAG`], which no real
/// line number (a 64-bit byte address shifted right by 6) can equal.
///
/// # Example
///
/// ```
/// use dspatch_sim::{Cache, CacheConfig};
/// use dspatch_types::LineAddr;
///
/// let mut cache = Cache::new(CacheConfig::new("L1D", 4096, 4, 5, 8));
/// assert!(!cache.demand_lookup(LineAddr::new(1)));
/// cache.fill(LineAddr::new(1), false, false);
/// assert!(cache.demand_lookup(LineAddr::new(1)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Cache {
    config: CacheConfig,
    /// Line tags, `EMPTY_TAG` when unoccupied; set `s` occupies
    /// `tags[s*assoc..(s+1)*assoc]`, and the same indexing applies to
    /// `stamps`.
    tags: Vec<u64>,
    /// Packed LRU-clock + [`LineMeta`] words (see [`pack_stamp`]). Victim
    /// selection compares `stamp >> STAMP_CLOCK_SHIFT`, which orders
    /// identically to the clock values themselves.
    stamps: Vec<u64>,
    /// `sets - 1`, valid because the set count is a power of two.
    set_mask: usize,
    /// Associativity, denormalized from `config` for the indexing hot path.
    assoc: usize,
    clock: u64,
    stats: CacheStats,
}

impl Cache {
    /// Creates a cache.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`CacheConfig::validate`].
    pub fn new(config: CacheConfig) -> Self {
        config.validate().expect("invalid cache configuration");
        let sets = config.sets();
        debug_assert!(sets.is_power_of_two());
        let slots = sets * config.ways;
        Self {
            tags: vec![EMPTY_TAG; slots],
            stamps: vec![0; slots],
            set_mask: sets - 1,
            assoc: config.ways,
            clock: 0,
            stats: CacheStats::default(),
            config,
        }
    }

    /// The cache's configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    #[inline]
    fn set_base(&self, line: LineAddr) -> usize {
        ((line.as_u64() as usize) & self.set_mask) * self.assoc
    }

    /// Index of `line` in the arena if resident.
    #[inline]
    fn find(&self, line: LineAddr) -> Option<usize> {
        let base = self.set_base(line);
        let tag = line.as_u64();
        debug_assert_ne!(tag, EMPTY_TAG, "line aliases the empty-way sentinel");
        self.tags[base..base + self.assoc]
            .iter()
            .position(|&t| t == tag)
            .map(|i| base + i)
    }

    /// Returns whether `line` is resident, without touching LRU state or
    /// statistics.
    pub fn contains(&self, line: LineAddr) -> bool {
        self.find(line).is_some()
    }

    /// Returns `line`'s metadata without touching LRU state or statistics.
    /// The epoch engine's shards use this to read the shared-LLC snapshot
    /// side-effect-free; the real probe is replayed at the rendezvous.
    pub fn peek_meta(&self, line: LineAddr) -> Option<LineMeta> {
        self.find(line).map(|slot| unpack_meta(self.stamps[slot]))
    }

    /// Replays a demand probe whose outcome (`hit`, `first_use`) was
    /// decided earlier against a snapshot: applies exactly the LRU,
    /// used-bit and statistics effects [`Cache::demand_lookup_first_use`]
    /// would have applied had it returned that outcome. The line may have
    /// been evicted since the decision — the stats still record the
    /// decided outcome so replay stays deterministic.
    pub fn record_demand_probe(&mut self, line: LineAddr, hit: bool, first_use: bool) {
        self.clock += 1;
        if !hit {
            self.stats.demand_misses += 1;
            return;
        }
        self.stats.demand_hits += 1;
        if first_use {
            self.stats.prefetch_first_uses += 1;
        }
        if let Some(slot) = self.find(line) {
            let stamp = self.stamps[slot];
            self.stamps[slot] = (self.clock << STAMP_CLOCK_SHIFT)
                | (stamp & !(u64::MAX << STAMP_CLOCK_SHIFT))
                | STAMP_USED;
        }
    }

    /// Performs a demand lookup: updates LRU, marks prefetched lines as
    /// used, and records hit/miss statistics. Returns whether it hit.
    pub fn demand_lookup(&mut self, line: LineAddr) -> bool {
        self.demand_lookup_first_use(line).0
    }

    /// [`Cache::demand_lookup`] that also reports whether the hit was the
    /// first demand use of a prefetched line — the coverage-accounting
    /// signal the demand path previously reconstructed by sampling
    /// `prefetch_first_uses` around the call.
    pub fn demand_lookup_first_use(&mut self, line: LineAddr) -> (bool, bool) {
        self.clock += 1;
        if let Some(slot) = self.find(line) {
            let stamp = self.stamps[slot];
            let first_use = stamp & (STAMP_PREFETCHED | STAMP_USED) == STAMP_PREFETCHED;
            if first_use {
                self.stats.prefetch_first_uses += 1;
            }
            self.stamps[slot] = (self.clock << STAMP_CLOCK_SHIFT)
                | (stamp & !(u64::MAX << STAMP_CLOCK_SHIFT))
                | STAMP_USED;
            self.stats.demand_hits += 1;
            (true, first_use)
        } else {
            self.stats.demand_misses += 1;
            (false, false)
        }
    }

    /// Performs a prefetch lookup: returns whether the line is already
    /// resident, updating only the LRU position (prefetch probes do not
    /// count as demand traffic and do not mark lines used).
    pub fn prefetch_lookup(&mut self, line: LineAddr) -> bool {
        self.clock += 1;
        if let Some(slot) = self.find(line) {
            let meta_bits = self.stamps[slot] & !(u64::MAX << STAMP_CLOCK_SHIFT);
            self.stamps[slot] = (self.clock << STAMP_CLOCK_SHIFT) | meta_bits;
            true
        } else {
            false
        }
    }

    /// Fills `line` into the cache. `is_prefetch` marks prefetch fills;
    /// `low_priority` inserts near the LRU position instead of at MRU.
    /// Returns the eviction this fill caused, if any.
    pub fn fill(
        &mut self,
        line: LineAddr,
        is_prefetch: bool,
        low_priority: bool,
    ) -> Option<Eviction> {
        self.clock += 1;
        let clock = self.clock;
        let base = self.set_base(line);
        let tag = line.as_u64();
        let set_tags = &self.tags[base..base + self.assoc];

        // One pass over the set: find a resident copy, the first free way
        // and the LRU victim simultaneously (the victim scan is free here —
        // the stamp line is about to be touched anyway).
        let mut free_index = usize::MAX;
        let mut victim_index = base;
        let mut victim_lru = u64::MAX;
        for (i, &t) in set_tags.iter().enumerate() {
            if t == tag {
                // Already resident: a demand fill upgrades a prefetched line
                // to a demand line; a prefetch fill never downgrades.
                let meta_bits = self.stamps[base + i] & !(u64::MAX << STAMP_CLOCK_SHIFT);
                let used = if is_prefetch { 0 } else { STAMP_USED };
                self.stamps[base + i] = (clock << STAMP_CLOCK_SHIFT) | meta_bits | used;
                return None;
            }
            if t == EMPTY_TAG {
                if free_index == usize::MAX {
                    free_index = i;
                }
            } else if self.stamps[base + i] >> STAMP_CLOCK_SHIFT < victim_lru {
                victim_lru = self.stamps[base + i] >> STAMP_CLOCK_SHIFT;
                victim_index = base + i;
            }
        }

        if is_prefetch {
            self.stats.prefetch_fills += 1;
        } else {
            self.stats.demand_fills += 1;
        }

        // Low-priority fills are inserted with an old LRU stamp so they are
        // the next victims unless promoted by a demand hit.
        let lru_clock = if low_priority {
            clock.saturating_sub(1 << 20)
        } else {
            clock
        };
        let new_meta = LineMeta {
            prefetched: is_prefetch,
            used: false,
            low_priority,
        };

        // A free way wins outright (matching the seed's fill-before-replace
        // order, since free ways only exist before the set first fills up);
        // otherwise the smallest LRU clock, earliest index on ties (the
        // shift discards the packed meta bits, so ties resolve exactly as
        // they did when the clock was stored on its own).
        let slot = if free_index != usize::MAX {
            base + free_index
        } else {
            victim_index
        };
        let evicted_tag = self.tags[slot];
        let evicted_meta = unpack_meta(self.stamps[slot]);
        self.tags[slot] = tag;
        self.stamps[slot] = pack_stamp(lru_clock, new_meta);
        if evicted_tag == EMPTY_TAG {
            return None;
        }
        if evicted_meta.prefetched && !evicted_meta.used {
            self.stats.prefetch_unused_evictions += 1;
        }
        Some(Eviction {
            line: LineAddr::new(evicted_tag),
            meta: evicted_meta,
        })
    }

    /// Number of resident lines (for occupancy checks in tests).
    pub fn resident_lines(&self) -> usize {
        self.tags.iter().filter(|&&t| t != EMPTY_TAG).count()
    }

    /// Zeroes the statistics while keeping contents, LRU state and the
    /// clock — the sampling engine calls this at each measurement-interval
    /// boundary so per-interval stats reflect only the interval.
    pub(crate) fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }
}

impl SnapshotState for Cache {
    fn snapshot_tag(&self) -> &'static str {
        "cache"
    }

    fn save_state(&self, writer: &mut StateWriter) -> Result<(), SnapshotError> {
        writer.put_len(self.tags.len());
        for tag in &self.tags {
            writer.put_u64(*tag);
        }
        for stamp in &self.stamps {
            writer.put_u64(*stamp);
        }
        writer.put_u64(self.clock);
        writer.put_u64(self.stats.demand_hits);
        writer.put_u64(self.stats.demand_misses);
        writer.put_u64(self.stats.demand_fills);
        writer.put_u64(self.stats.prefetch_fills);
        writer.put_u64(self.stats.prefetch_first_uses);
        writer.put_u64(self.stats.prefetch_unused_evictions);
        Ok(())
    }

    fn load_state(&mut self, reader: &mut StateReader<'_>) -> Result<(), SnapshotError> {
        let slots = reader.get_len()?;
        if slots != self.tags.len() {
            return Err(SnapshotError::Invalid(format!(
                "cache {:?} has {} slots but the snapshot holds {}",
                self.config.name,
                self.tags.len(),
                slots
            )));
        }
        for tag in &mut self.tags {
            *tag = reader.get_u64()?;
        }
        for stamp in &mut self.stamps {
            *stamp = reader.get_u64()?;
        }
        self.clock = reader.get_u64()?;
        self.stats.demand_hits = reader.get_u64()?;
        self.stats.demand_misses = reader.get_u64()?;
        self.stats.demand_fills = reader.get_u64()?;
        self.stats.prefetch_fills = reader.get_u64()?;
        self.stats.prefetch_first_uses = reader.get_u64()?;
        self.stats.prefetch_unused_evictions = reader.get_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cache() -> Cache {
        // 4 sets x 2 ways.
        Cache::new(CacheConfig::new("test", 8 * CACHE_LINE_BYTES, 2, 1, 4))
    }

    fn line(n: u64) -> LineAddr {
        LineAddr::new(n)
    }

    #[test]
    fn fill_then_lookup_hits() {
        let mut c = small_cache();
        assert!(!c.demand_lookup(line(1)));
        c.fill(line(1), false, false);
        assert!(c.demand_lookup(line(1)));
        assert_eq!(c.stats().demand_hits, 1);
        assert_eq!(c.stats().demand_misses, 1);
    }

    #[test]
    fn lru_victim_is_least_recently_used() {
        let mut c = small_cache();
        // Lines 0, 4, 8 map to the same set (4 sets).
        c.fill(line(0), false, false);
        c.fill(line(4), false, false);
        // Touch line 0 so line 4 becomes LRU.
        c.demand_lookup(line(0));
        let evicted = c.fill(line(8), false, false).expect("eviction expected");
        assert_eq!(evicted.line, line(4));
        assert!(c.contains(line(0)) && c.contains(line(8)));
    }

    #[test]
    fn capacity_is_bounded() {
        let mut c = small_cache();
        for n in 0..100u64 {
            c.fill(line(n), false, false);
        }
        assert_eq!(c.resident_lines(), 8);
    }

    #[test]
    fn prefetch_use_tracking() {
        let mut c = small_cache();
        c.fill(line(3), true, false);
        assert_eq!(c.stats().prefetch_fills, 1);
        assert!(c.demand_lookup(line(3)));
        assert_eq!(c.stats().prefetch_first_uses, 1);
        // Second hit is not another "first use".
        assert!(c.demand_lookup(line(3)));
        assert_eq!(c.stats().prefetch_first_uses, 1);
    }

    #[test]
    fn unused_prefetch_eviction_is_counted() {
        let mut c = small_cache();
        c.fill(line(0), true, false);
        c.fill(line(4), false, false);
        c.fill(line(8), false, false); // evicts the unused prefetch (line 0)
        assert_eq!(c.stats().prefetch_unused_evictions, 1);
    }

    #[test]
    fn low_priority_fill_is_evicted_first() {
        let mut c = small_cache();
        c.fill(line(0), false, false);
        c.fill(line(4), true, true); // low-priority prefetch
        let evicted = c.fill(line(8), false, false).expect("eviction expected");
        assert_eq!(
            evicted.line,
            line(4),
            "low-priority line must be the victim"
        );
    }

    #[test]
    fn low_priority_line_promoted_by_demand_hit() {
        let mut c = small_cache();
        c.fill(line(0), false, false);
        c.fill(line(4), true, true);
        assert!(c.demand_lookup(line(4))); // promotes to MRU
        let evicted = c.fill(line(8), false, false).expect("eviction expected");
        assert_eq!(evicted.line, line(0));
    }

    #[test]
    fn demand_fill_over_prefetch_marks_used() {
        let mut c = small_cache();
        c.fill(line(0), true, false);
        c.fill(line(0), false, false);
        // Evicting it later must not count as an unused prefetch eviction.
        c.fill(line(4), false, false);
        c.fill(line(8), false, false);
        assert_eq!(c.stats().prefetch_unused_evictions, 0);
    }

    #[test]
    fn prefetch_lookup_does_not_change_demand_stats() {
        let mut c = small_cache();
        c.fill(line(1), false, false);
        assert!(c.prefetch_lookup(line(1)));
        assert!(!c.prefetch_lookup(line(2)));
        assert_eq!(c.stats().demand_hits, 0);
        assert_eq!(c.stats().demand_misses, 0);
    }

    #[test]
    fn miss_ratio_is_computed() {
        let mut c = small_cache();
        c.fill(line(1), false, false);
        c.demand_lookup(line(1));
        c.demand_lookup(line(2));
        assert!((c.stats().miss_ratio() - 0.5).abs() < 1e-12);
        assert_eq!(CacheStats::default().miss_ratio(), 0.0);
    }

    #[test]
    fn config_sets_and_validation() {
        assert_eq!(CacheConfig::new("L1D", 32 * 1024, 8, 5, 16).sets(), 64);
        assert!(CacheConfig::new("bad", 100, 3, 1, 1).validate().is_err());
        assert!(CacheConfig::new("bad", 0, 1, 1, 1).validate().is_err());
        assert!(CacheConfig::new("ok", 4096, 4, 1, 1).validate().is_ok());
    }

    #[test]
    fn power_of_two_geometry_validates_as_exact() {
        let geometry = CacheConfig::new("LLC", 2 * 1024 * 1024, 16, 30, 32)
            .validate()
            .expect("valid geometry");
        assert_eq!(geometry.sets, 2048);
        assert_eq!(geometry.effective_bytes, 2 * 1024 * 1024);
        assert!(!geometry.rounded, "paper geometries must not round");
    }

    #[test]
    fn non_power_of_two_geometry_surfaces_the_rounded_capacity() {
        // 96 KB, 8-way => 192 sets, rounded up to 256 => 128 KB modeled.
        // Before the echo existed this inflation left no trace anywhere.
        let config = CacheConfig::new("L2", 96 * 1024, 8, 8, 32);
        let geometry = config.validate().expect("valid geometry");
        assert!(geometry.rounded);
        assert_eq!(geometry.requested_bytes, 96 * 1024);
        assert_eq!(geometry.sets, 256);
        assert_eq!(geometry.effective_bytes, 128 * 1024);
        // The built cache really has that many slots.
        let cache = Cache::new(config);
        assert_eq!(cache.tags.len(), 256 * 8);
    }

    #[test]
    #[should_panic(expected = "invalid cache configuration")]
    fn invalid_config_panics_on_construction() {
        let _ = Cache::new(CacheConfig::new("bad", 100, 3, 1, 1));
    }
}
