//! A cycle-stepped, trace-driven memory-hierarchy simulator for prefetcher
//! evaluation.
//!
//! The DSPatch paper evaluates prefetchers on an in-house cycle-accurate
//! simulator modelling a Skylake-class core (Table 2). This crate provides
//! the substrate this reproduction uses instead:
//!
//! * [`cache`] — set-associative caches with LRU replacement, prefetch
//!   metadata and low-priority (pollution-bounding) insertion.
//! * [`dram`] — a DDR4 channel/bank timing model with row buffers, a CAS
//!   counter per 4×tRC window and the 2-bit bandwidth-utilization quartile
//!   broadcast DSPatch consumes (paper, Section 3.2).
//! * [`system`] — an approximate out-of-order core model (ROB- and
//!   load-buffer-limited memory-level parallelism, 4-wide retire) plus the
//!   L1/L2/LLC/DRAM hierarchy, for one core or four cores sharing the LLC
//!   and DRAM.
//! * [`stats`] — coverage / accuracy / pollution accounting used by the
//!   figures.
//! * [`config`] — Table 2 parameters and the DRAM speed grid of Figures 1,
//!   6 and 15.
//!
//! Traces reach the machine through the pull-based
//! [`dspatch_trace::TraceSource`] API, so a core holds O(1) trace state
//! however long the run: synthetic workloads are generated lazily, files
//! stream through a buffered reader, and an owned [`dspatch_trace::Trace`]
//! still works as the materialized adapter source.
//!
//! # Example
//!
//! ```
//! use dspatch_sim::{SimulationBuilder, SystemConfig};
//! use dspatch_trace::{GeneratorSpec, StreamGen, SynthSource};
//! use dspatch_types::NullPrefetcher;
//!
//! // A lazily-evaluated streaming source: no trace is ever materialized.
//! let source = SynthSource::new(
//!     "stream",
//!     GeneratorSpec::Stream(StreamGen::default()),
//!     1,
//!     2_000,
//! );
//! let result = SimulationBuilder::new(SystemConfig::single_thread())
//!     .with_core(source, NullPrefetcher::new())
//!     .run();
//! assert!(result.cores[0].ipc() > 0.0);
//! ```

pub mod cache;
pub mod config;
pub mod dram;
pub mod epoch;
pub mod snapshot;
pub mod stats;
pub mod system;
pub mod tables;

pub use cache::{Cache, CacheConfig, CacheGeometry, CacheStats};
pub use config::{CoreConfig, DramConfig, DramSpeedGrade, SystemConfig};
pub use dram::{BandwidthTracker, Dram, DramStats};
pub use snapshot::MachineState;
pub use stats::{CoreResult, PollutionBreakdown, PrefetchAccounting, SimResult};
pub use system::{simulations_started, Machine, SimulationBuilder};
