//! Deterministic synthetic access-pattern generators.
//!
//! Each generator produces the kind of memory behaviour one of the paper's
//! workload categories is dominated by. All generators are seeded and
//! deterministic: the same `(generator, seed, length)` triple always yields
//! the same trace, so every experiment in the harness is reproducible.
//!
//! Generators are **incremental**: [`PatternGenerator::stream`] returns a
//! [`RecordStream`] holding O(1) state (a PRNG plus a few cursors) that
//! produces one record per call, and [`PatternGenerator::generate_records`]
//! is merely that stream collected into a `Vec`. The streaming and
//! materialized forms therefore agree bit for bit by construction, which is
//! what lets the simulator run billion-access traces without ever holding
//! one in memory (see [`crate::source`]).

use crate::record::TraceRecord;
use dspatch_types::{CACHE_LINE_BYTES, LINES_PER_PAGE, PAGE_BYTES};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// An unbounded, incrementally-evaluated record stream: the streaming form
/// of a [`PatternGenerator`]. Implementations hold O(1) state and may be
/// called forever; bounding a stream to a trace length is the caller's job
/// (see [`crate::source::SynthSource`]).
pub trait RecordStream: Send {
    /// Produces the next record of the stream.
    fn next_record(&mut self) -> TraceRecord;
}

/// A synthetic access-pattern generator.
pub trait PatternGenerator {
    /// Starts the streaming form of this generator.
    ///
    /// `len` is the target trace length. Streams are unbounded, but the
    /// weighted mix conditions its per-part replay period on the requested
    /// length, so the same `len` must be passed here and used as the cap for
    /// the stream to reproduce `generate_records(seed, len)` exactly.
    fn stream(&self, seed: u64, len: usize) -> Box<dyn RecordStream>;

    /// Generates `len` memory accesses deterministically from `seed`.
    ///
    /// Provided method: collects `len` records from
    /// [`PatternGenerator::stream`], so the materialized and streaming forms
    /// agree bit for bit by construction.
    fn generate_records(&self, seed: u64, len: usize) -> Vec<TraceRecord> {
        let mut stream = self.stream(seed, len);
        (0..len).map(|_| stream.next_record()).collect()
    }
}

/// Sequential streaming over one or more large arrays (HPC / floating-point
/// SPEC behaviour: dense, regular, delta-friendly).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StreamGen {
    /// Number of concurrent streams interleaved round-robin.
    pub streams: usize,
    /// Non-memory instructions between accesses.
    pub gap: u32,
    /// Fraction (0..=100) of accesses that are stores.
    pub store_percent: u8,
}

impl Default for StreamGen {
    fn default() -> Self {
        Self {
            streams: 4,
            gap: 6,
            store_percent: 20,
        }
    }
}

struct StreamState {
    rng: SmallRng,
    cursors: Vec<u64>,
    pcs: Vec<u64>,
    next: usize,
    gap: u32,
    store_percent: u8,
}

impl RecordStream for StreamState {
    fn next_record(&mut self) -> TraceRecord {
        let s = self.next;
        self.next = (self.next + 1) % self.cursors.len();
        let addr = self.cursors[s];
        self.cursors[s] += CACHE_LINE_BYTES as u64;
        let record = if self.rng.random_range(0..100u8) < self.store_percent {
            TraceRecord::store(self.pcs[s], addr)
        } else {
            TraceRecord::load(self.pcs[s], addr)
        };
        record.with_gap(self.gap)
    }
}

impl PatternGenerator for StreamGen {
    fn stream(&self, seed: u64, _len: usize) -> Box<dyn RecordStream> {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x5741_7645);
        let streams = self.streams.max(1);
        let cursors: Vec<u64> = (0..streams)
            .map(|i| {
                // Random line-aligned start within each stream's private
                // region; regions are spaced 2^24 lines (1 GiB) apart so
                // streams never collide.
                (rng.random_range(0..1u64 << 20) + ((i as u64) << 24)) * CACHE_LINE_BYTES as u64
            })
            .collect();
        let pcs: Vec<u64> = (0..streams).map(|i| 0x40_0000 + i as u64 * 0x40).collect();
        Box::new(StreamState {
            rng,
            cursors,
            pcs,
            next: 0,
            gap: self.gap,
            store_percent: self.store_percent,
        })
    }
}

/// Constant-stride access over large arrays (e.g. column walks, large
/// structure iteration). Delta prefetchers handle this well.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StridedGen {
    /// Stride between consecutive accesses of one stream, in cache lines.
    pub stride_lines: u64,
    /// Number of concurrent streams.
    pub streams: usize,
    /// Non-memory instructions between accesses.
    pub gap: u32,
}

impl Default for StridedGen {
    fn default() -> Self {
        Self {
            stride_lines: 3,
            streams: 2,
            gap: 8,
        }
    }
}

struct StridedState {
    cursors: Vec<u64>,
    pcs: Vec<u64>,
    next: usize,
    stride: u64,
    gap: u32,
}

impl RecordStream for StridedState {
    fn next_record(&mut self) -> TraceRecord {
        let s = self.next;
        self.next = (self.next + 1) % self.cursors.len();
        let addr = self.cursors[s];
        self.cursors[s] += self.stride;
        TraceRecord::load(self.pcs[s], addr).with_gap(self.gap)
    }
}

impl PatternGenerator for StridedGen {
    fn stream(&self, seed: u64, _len: usize) -> Box<dyn RecordStream> {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x5354_5249);
        let streams = self.streams.max(1);
        let stride = self.stride_lines.max(1) * CACHE_LINE_BYTES as u64;
        let cursors: Vec<u64> = (0..streams)
            .map(|i| (rng.random_range(0..1u64 << 18) + ((i as u64) << 22)) * PAGE_BYTES as u64)
            .collect();
        let pcs: Vec<u64> = (0..streams).map(|i| 0x41_0000 + i as u64 * 0x20).collect();
        Box::new(StridedState {
            cursors,
            pcs,
            next: 0,
            stride,
            gap: self.gap,
        })
    }
}

/// Spatially-clustered accesses: a small set of "object layouts" (one per
/// PC), each touching a fixed set of offsets within a fresh 4 KB page, with
/// the per-page access order shuffled to model out-of-order and memory-
/// subsystem reordering. This is the structure DSPatch and SMS exploit
/// (paper, Figure 2), and the reordering is exactly what defeats purely
/// local delta histories.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpatialPatternGen {
    /// Number of distinct object layouts (and trigger PCs).
    pub layouts: usize,
    /// Lines touched per page visit.
    pub density: usize,
    /// Degree of reordering: accesses are shuffled within windows of this
    /// size (1 = program order).
    pub reorder_window: usize,
    /// Number of distinct pages cycled through before reuse.
    pub working_set_pages: usize,
    /// Non-memory instructions between accesses.
    pub gap: u32,
}

impl Default for SpatialPatternGen {
    fn default() -> Self {
        Self {
            layouts: 12,
            density: 10,
            reorder_window: 6,
            working_set_pages: 4096,
            gap: 10,
        }
    }
}

struct SpatialState {
    rng: SmallRng,
    /// Fixed per-layout offset sets, stable across page visits.
    layout_offsets: Vec<Vec<usize>>,
    base_page: u64,
    working_set_pages: u64,
    reorder_window: usize,
    gap: u32,
    page_cursor: u64,
    /// The current page visit: offsets in emission order (reused buffer).
    visit: Vec<usize>,
    visit_pos: usize,
    page: u64,
    pc: u64,
}

impl RecordStream for SpatialState {
    fn next_record(&mut self) -> TraceRecord {
        if self.visit_pos >= self.visit.len() {
            let k = self.rng.random_range(0..self.layout_offsets.len());
            self.page = self.base_page + (self.page_cursor % self.working_set_pages);
            self.page_cursor += 1;
            self.pc = 0x42_0000 + k as u64 * 0x100;
            self.visit.clear();
            self.visit.extend_from_slice(&self.layout_offsets[k]);
            // The first access (the object header / trigger) is always the
            // same field, exactly as in the paper's Figure 2; the remaining
            // accesses are reordered by out-of-order execution, shuffled
            // within bounded windows.
            if self.visit.len() > 1 {
                let window = self.reorder_window.max(1).min(self.visit.len() - 1);
                for chunk in self.visit[1..].chunks_mut(window) {
                    chunk.shuffle(&mut self.rng);
                }
            }
            self.visit_pos = 0;
        }
        let offset = self.visit[self.visit_pos];
        self.visit_pos += 1;
        let addr = self.page * PAGE_BYTES as u64 + (offset * CACHE_LINE_BYTES) as u64;
        // The object is traversed as a linked structure: every field access
        // chases a pointer produced by the previous one, so without
        // prefetching the visit is a serial chain of misses. A spatial
        // prefetcher that recognises the layout at the trigger breaks that
        // chain — which is exactly the benefit the paper attributes to
        // anchored spatial patterns.
        TraceRecord::load(self.pc, addr)
            .with_gap(self.gap)
            .with_dependent(true)
    }
}

impl PatternGenerator for SpatialPatternGen {
    fn stream(&self, seed: u64, _len: usize) -> Box<dyn RecordStream> {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x5350_4154);
        let layouts = self.layouts.max(1);
        let density = self.density.clamp(1, LINES_PER_PAGE);
        let layout_offsets: Vec<Vec<usize>> = (0..layouts)
            .map(|k| {
                let mut layout_rng =
                    SmallRng::seed_from_u64(seed ^ (k as u64).wrapping_mul(0x9E37));
                let mut offsets: Vec<usize> = (0..LINES_PER_PAGE).collect();
                offsets.shuffle(&mut layout_rng);
                offsets.truncate(density);
                offsets
            })
            .collect();
        let base_page = rng.random_range(0..1u64 << 20) << 4;
        Box::new(SpatialState {
            rng,
            layout_offsets,
            base_page,
            working_set_pages: self.working_set_pages.max(1) as u64,
            reorder_window: self.reorder_window,
            gap: self.gap,
            page_cursor: 0,
            visit: Vec::with_capacity(density),
            visit_pos: 0,
            page: 0,
            pc: 0,
        })
    }
}

/// Sparse, irregular accesses: large footprint, only a handful of accesses
/// per page, little short-term reuse (graph / cloud / mcf-like behaviour).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct IrregularGen {
    /// Footprint in 4 KB pages.
    pub footprint_pages: u64,
    /// Accesses issued per visited page (1..=4 keeps it sparse).
    pub accesses_per_page: usize,
    /// Number of distinct PCs issuing the accesses.
    pub pcs: usize,
    /// Non-memory instructions between accesses.
    pub gap: u32,
}

impl Default for IrregularGen {
    fn default() -> Self {
        Self {
            footprint_pages: 1 << 16,
            accesses_per_page: 2,
            pcs: 24,
            gap: 14,
        }
    }
}

struct IrregularState {
    rng: SmallRng,
    footprint_pages: u64,
    per_page: usize,
    pcs: u64,
    gap: u32,
    page: u64,
    pc: u64,
    burst_pos: usize,
}

impl RecordStream for IrregularState {
    fn next_record(&mut self) -> TraceRecord {
        if self.burst_pos >= self.per_page {
            self.page = self.rng.random_range(0..self.footprint_pages);
            self.pc = 0x43_0000 + self.rng.random_range(0..self.pcs) * 0x10;
            self.burst_pos = 0;
        }
        let offset = self.rng.random_range(0..LINES_PER_PAGE);
        let addr = self.page * PAGE_BYTES as u64 + (offset * CACHE_LINE_BYTES) as u64;
        let dependent = self.burst_pos == 0;
        self.burst_pos += 1;
        TraceRecord::load(self.pc, addr)
            .with_gap(self.gap)
            .with_dependent(dependent)
    }
}

impl PatternGenerator for IrregularGen {
    fn stream(&self, seed: u64, _len: usize) -> Box<dyn RecordStream> {
        let per_page = self.accesses_per_page.clamp(1, LINES_PER_PAGE);
        Box::new(IrregularState {
            rng: SmallRng::seed_from_u64(seed ^ 0x4952_5245),
            footprint_pages: self.footprint_pages.max(1),
            per_page,
            pcs: self.pcs.max(1) as u64,
            gap: self.gap,
            page: 0,
            pc: 0,
            burst_pos: per_page,
        })
    }
}

/// Dependent pointer chasing over a shuffled node array: consecutive
/// accesses land on unrelated lines, so almost nothing is prefetchable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PointerChaseGen {
    /// Number of nodes in the linked structure.
    pub nodes: u64,
    /// Size of one node in bytes (spacing between node addresses).
    pub node_bytes: u64,
    /// Non-memory instructions between accesses.
    pub gap: u32,
}

impl Default for PointerChaseGen {
    fn default() -> Self {
        Self {
            nodes: 1 << 16,
            node_bytes: 192,
            gap: 4,
        }
    }
}

struct PointerChaseState {
    current: u64,
    multiplier: u64,
    nodes: u64,
    node_bytes: u64,
    gap: u32,
}

impl RecordStream for PointerChaseState {
    fn next_record(&mut self) -> TraceRecord {
        let addr = self.current * self.node_bytes;
        self.current = (self
            .current
            .wrapping_mul(self.multiplier)
            .wrapping_add(12345))
            % self.nodes;
        TraceRecord::load(0x44_0000, addr)
            .with_gap(self.gap)
            .with_dependent(true)
    }
}

impl PatternGenerator for PointerChaseGen {
    fn stream(&self, seed: u64, _len: usize) -> Box<dyn RecordStream> {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x5054_4348);
        let nodes = self.nodes.max(2);
        // A random permutation cycle approximated by a large-stride LCG walk,
        // keeping memory usage O(1) even for huge node counts.
        let multiplier = rng.random_range(1..(nodes / 2).max(2)) * 2 + 1; // odd multiplier => long period
        let current = rng.random_range(0..nodes);
        Box::new(PointerChaseState {
            current,
            multiplier,
            nodes,
            node_bytes: self.node_bytes.max(CACHE_LINE_BYTES as u64),
            gap: self.gap,
        })
    }
}

/// Code-footprint-heavy behaviour (server / TPC-C-like): thousands of
/// distinct PCs, each touching a small spatial neighbourhood. Prefetchers
/// with large signature stores (16 K-entry SMS) retain these; 256-entry
/// tables thrash.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CodeHeavyGen {
    /// Number of distinct trigger PCs.
    pub distinct_pcs: usize,
    /// Lines touched around each visited location.
    pub burst: usize,
    /// Footprint in 4 KB pages.
    pub footprint_pages: u64,
    /// Non-memory instructions between accesses.
    pub gap: u32,
}

impl Default for CodeHeavyGen {
    fn default() -> Self {
        Self {
            distinct_pcs: 4096,
            burst: 3,
            footprint_pages: 1 << 15,
            gap: 12,
        }
    }
}

struct CodeHeavyState {
    rng: SmallRng,
    pcs: u64,
    burst: usize,
    footprint_pages: u64,
    gap: u32,
    page: u64,
    pc: u64,
    start: usize,
    burst_pos: usize,
}

impl RecordStream for CodeHeavyState {
    fn next_record(&mut self) -> TraceRecord {
        if self.burst_pos >= self.burst {
            let pc_index = self.rng.random_range(0..self.pcs);
            self.pc = 0x45_0000 + pc_index * 0x14;
            // Each PC has an affine home region so its accesses repeat pages.
            self.page = (pc_index * 37 + self.rng.random_range(0..8u64)) % self.footprint_pages;
            self.start = self.rng.random_range(0..LINES_PER_PAGE - self.burst + 1);
            self.burst_pos = 0;
        }
        let addr = self.page * PAGE_BYTES as u64
            + ((self.start + self.burst_pos) * CACHE_LINE_BYTES) as u64;
        let dependent = self.burst_pos == 0;
        self.burst_pos += 1;
        TraceRecord::load(self.pc, addr)
            .with_gap(self.gap)
            .with_dependent(dependent)
    }
}

impl PatternGenerator for CodeHeavyGen {
    fn stream(&self, seed: u64, _len: usize) -> Box<dyn RecordStream> {
        let burst = self.burst.clamp(1, LINES_PER_PAGE);
        Box::new(CodeHeavyState {
            rng: SmallRng::seed_from_u64(seed ^ 0x434f_4445),
            pcs: self.distinct_pcs.max(1) as u64,
            burst,
            footprint_pages: self.footprint_pages.max(1),
            gap: self.gap,
            page: 0,
            pc: 0,
            start: 0,
            burst_pos: burst,
        })
    }
}

/// A weighted interleaving of other generators, used to compose realistic
/// category mixes (e.g. "Client" = streaming + spatial + irregular).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MixedGen {
    /// Weighted parts: `(weight, generator)`.
    pub parts: Vec<(u32, GeneratorSpec)>,
    /// Length of each contiguous phase taken from one part before switching.
    pub phase_len: usize,
}

impl MixedGen {
    /// Creates a mix from weighted parts.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty or all weights are zero.
    pub fn new(parts: Vec<(u32, GeneratorSpec)>) -> Self {
        assert!(!parts.is_empty(), "a mix needs at least one part");
        assert!(
            parts.iter().any(|(w, _)| *w > 0),
            "at least one weight must be positive"
        );
        Self {
            parts,
            phase_len: 256,
        }
    }
}

struct MixedPart {
    spec: GeneratorSpec,
    seed: u64,
    stream: Box<dyn RecordStream>,
    pos: usize,
}

struct MixedState {
    rng: SmallRng,
    weights: Vec<u32>,
    total_weight: u64,
    parts: Vec<MixedPart>,
    /// Per-part replay period: the materialized form pre-generates `len`
    /// records per part and wraps its cursor modulo that length, so the
    /// streaming form replays a part's stream from its seed at the same
    /// boundary.
    period: usize,
    phase_len: usize,
    current: usize,
    phase_remaining: usize,
}

impl RecordStream for MixedState {
    fn next_record(&mut self) -> TraceRecord {
        if self.phase_remaining == 0 {
            let mut pick = self.rng.random_range(0..self.total_weight.max(1));
            let mut index = 0;
            for (i, w) in self.weights.iter().enumerate() {
                if pick < u64::from(*w) {
                    index = i;
                    break;
                }
                pick -= u64::from(*w);
            }
            self.current = index;
            self.phase_remaining = self.phase_len;
        }
        let part = &mut self.parts[self.current];
        if part.pos >= self.period {
            part.stream = part.spec.stream(part.seed, self.period);
            part.pos = 0;
        }
        let record = part.stream.next_record();
        part.pos += 1;
        self.phase_remaining -= 1;
        record
    }
}

impl PatternGenerator for MixedGen {
    fn stream(&self, seed: u64, len: usize) -> Box<dyn RecordStream> {
        let rng = SmallRng::seed_from_u64(seed ^ 0x4d49_5845);
        let total_weight: u64 = self.parts.iter().map(|(w, _)| u64::from(*w)).sum();
        let period = len.max(1);
        let parts: Vec<MixedPart> = self
            .parts
            .iter()
            .enumerate()
            .map(|(i, (_, spec))| {
                let part_seed = seed.wrapping_add(i as u64 * 7919);
                MixedPart {
                    spec: spec.clone(),
                    seed: part_seed,
                    stream: spec.stream(part_seed, period),
                    pos: 0,
                }
            })
            .collect();
        Box::new(MixedState {
            rng,
            weights: self.parts.iter().map(|(w, _)| *w).collect(),
            total_weight,
            parts,
            period,
            phase_len: self.phase_len.max(1),
            current: 0,
            phase_remaining: 0,
        })
    }
}

/// A serializable, cloneable description of any generator, so workload
/// specifications can be stored and shared.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum GeneratorSpec {
    /// Sequential streaming.
    Stream(StreamGen),
    /// Constant-stride streams.
    Strided(StridedGen),
    /// Spatially-clustered, reordered object accesses.
    Spatial(SpatialPatternGen),
    /// Sparse irregular accesses.
    Irregular(IrregularGen),
    /// Dependent pointer chasing.
    PointerChase(PointerChaseGen),
    /// Large code footprint with small bursts.
    CodeHeavy(CodeHeavyGen),
    /// Weighted mix of other generators.
    Mixed(MixedGen),
}

impl PatternGenerator for GeneratorSpec {
    fn stream(&self, seed: u64, len: usize) -> Box<dyn RecordStream> {
        match self {
            GeneratorSpec::Stream(g) => g.stream(seed, len),
            GeneratorSpec::Strided(g) => g.stream(seed, len),
            GeneratorSpec::Spatial(g) => g.stream(seed, len),
            GeneratorSpec::Irregular(g) => g.stream(seed, len),
            GeneratorSpec::PointerChase(g) => g.stream(seed, len),
            GeneratorSpec::CodeHeavy(g) => g.stream(seed, len),
            GeneratorSpec::Mixed(g) => g.stream(seed, len),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_specs() -> Vec<GeneratorSpec> {
        vec![
            GeneratorSpec::Stream(StreamGen::default()),
            GeneratorSpec::Strided(StridedGen::default()),
            GeneratorSpec::Spatial(SpatialPatternGen::default()),
            GeneratorSpec::Irregular(IrregularGen::default()),
            GeneratorSpec::PointerChase(PointerChaseGen::default()),
            GeneratorSpec::CodeHeavy(CodeHeavyGen::default()),
            GeneratorSpec::Mixed(MixedGen::new(vec![
                (3, GeneratorSpec::Stream(StreamGen::default())),
                (1, GeneratorSpec::Irregular(IrregularGen::default())),
            ])),
        ]
    }

    #[test]
    fn generators_are_deterministic() {
        for spec in all_specs() {
            let a = spec.generate_records(42, 2000);
            let b = spec.generate_records(42, 2000);
            assert_eq!(a, b, "{spec:?} must be deterministic");
        }
    }

    #[test]
    fn different_seeds_differ() {
        for spec in all_specs() {
            let a = spec.generate_records(1, 2000);
            let b = spec.generate_records(2, 2000);
            assert_ne!(a, b, "{spec:?} should vary with the seed");
        }
    }

    #[test]
    fn generators_honour_requested_length() {
        for spec in all_specs() {
            assert_eq!(spec.generate_records(7, 1234).len(), 1234);
            assert_eq!(spec.generate_records(7, 0).len(), 0);
        }
    }

    #[test]
    fn streaming_form_matches_materialized_prefixes() {
        // Pulling records one at a time yields exactly the materialized
        // trace, and a shorter request is a prefix of a longer one (mixes
        // condition their replay period on `len`, so the prefix property is
        // checked against the same-`len` stream).
        for spec in all_specs() {
            let records = spec.generate_records(33, 1500);
            let mut stream = spec.stream(33, 1500);
            let pulled: Vec<TraceRecord> = (0..1500).map(|_| stream.next_record()).collect();
            assert_eq!(pulled, records, "{spec:?} stream must match materialized");
        }
    }

    #[test]
    fn stream_is_dense_and_sequential() {
        let records = StreamGen {
            streams: 1,
            gap: 0,
            store_percent: 0,
        }
        .generate_records(5, 100);
        for pair in records.windows(2) {
            let delta = pair[1].addr.line().delta_from(pair[0].addr.line());
            assert_eq!(delta, 1, "single stream must be unit-stride");
        }
    }

    #[test]
    fn strided_keeps_its_stride() {
        let gen = StridedGen {
            stride_lines: 5,
            streams: 1,
            gap: 0,
        };
        let records = gen.generate_records(9, 50);
        for pair in records.windows(2) {
            assert_eq!(pair[1].addr.line().delta_from(pair[0].addr.line()), 5);
        }
    }

    #[test]
    fn spatial_reuses_layouts_across_pages() {
        let gen = SpatialPatternGen {
            layouts: 2,
            density: 8,
            reorder_window: 4,
            working_set_pages: 1 << 20,
            gap: 0,
        };
        let records = gen.generate_records(11, 4000);
        // Group by PC and page; every page visited by one PC must touch the
        // same set of page offsets (the layout), whatever the order.
        use std::collections::BTreeMap;
        let mut per_pc_page: BTreeMap<(u64, u64), Vec<usize>> = BTreeMap::new();
        for r in &records {
            per_pc_page
                .entry((r.pc.as_u64(), r.addr.page().as_u64()))
                .or_default()
                .push(r.addr.page_line_offset());
        }
        let mut per_pc_sets: BTreeMap<u64, Vec<Vec<usize>>> = BTreeMap::new();
        for ((pc, _page), mut offsets) in per_pc_page {
            offsets.sort_unstable();
            offsets.dedup();
            per_pc_sets.entry(pc).or_default().push(offsets);
        }
        for (pc, sets) in per_pc_sets {
            let complete: Vec<&Vec<usize>> = sets.iter().filter(|s| s.len() == 8).collect();
            assert!(
                complete.len() > 1,
                "pc {pc:#x} should fully visit several pages"
            );
            for s in &complete {
                assert_eq!(
                    *s, complete[0],
                    "layout must repeat across pages for pc {pc:#x}"
                );
            }
        }
    }

    #[test]
    fn irregular_has_large_page_footprint() {
        let records = IrregularGen::default().generate_records(3, 8000);
        let mut pages: Vec<u64> = records.iter().map(|r| r.addr.page().as_u64()).collect();
        pages.sort_unstable();
        pages.dedup();
        assert!(
            pages.len() > 2000,
            "sparse generator must spread over many pages"
        );
    }

    #[test]
    fn pointer_chase_has_low_spatial_locality() {
        let records = PointerChaseGen::default().generate_records(17, 4000);
        let sequential = records
            .windows(2)
            .filter(|w| (w[1].addr.line().delta_from(w[0].addr.line())).abs() <= 1)
            .count();
        assert!(
            sequential < records.len() / 10,
            "consecutive chase accesses should rarely be adjacent ({sequential})"
        );
    }

    #[test]
    fn code_heavy_has_thousands_of_pcs() {
        let records = CodeHeavyGen::default().generate_records(23, 30_000);
        let mut pcs: Vec<u64> = records.iter().map(|r| r.pc.as_u64()).collect();
        pcs.sort_unstable();
        pcs.dedup();
        assert!(
            pcs.len() > 2000,
            "expected thousands of distinct PCs, got {}",
            pcs.len()
        );
    }

    #[test]
    fn mixed_contains_accesses_from_every_part() {
        let mix = MixedGen::new(vec![
            (1, GeneratorSpec::Stream(StreamGen::default())),
            (1, GeneratorSpec::PointerChase(PointerChaseGen::default())),
        ]);
        let records = mix.generate_records(31, 10_000);
        let stream_pcs = records.iter().filter(|r| r.pc.as_u64() < 0x41_0000).count();
        let chase_pcs = records
            .iter()
            .filter(|r| r.pc.as_u64() == 0x44_0000)
            .count();
        assert!(stream_pcs > 0 && chase_pcs > 0);
    }

    #[test]
    #[should_panic(expected = "at least one part")]
    fn empty_mix_is_rejected() {
        let _ = MixedGen::new(Vec::new());
    }
}
