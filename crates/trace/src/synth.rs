//! Deterministic synthetic access-pattern generators.
//!
//! Each generator produces the kind of memory behaviour one of the paper's
//! workload categories is dominated by. All generators are seeded and
//! deterministic: the same `(generator, seed, length)` triple always yields
//! the same trace, so every experiment in the harness is reproducible.

use crate::record::TraceRecord;
use dspatch_types::{CACHE_LINE_BYTES, LINES_PER_PAGE, PAGE_BYTES};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A synthetic access-pattern generator.
pub trait PatternGenerator {
    /// Generates `len` memory accesses deterministically from `seed`.
    fn generate_records(&self, seed: u64, len: usize) -> Vec<TraceRecord>;
}

/// Sequential streaming over one or more large arrays (HPC / floating-point
/// SPEC behaviour: dense, regular, delta-friendly).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StreamGen {
    /// Number of concurrent streams interleaved round-robin.
    pub streams: usize,
    /// Non-memory instructions between accesses.
    pub gap: u32,
    /// Fraction (0..=100) of accesses that are stores.
    pub store_percent: u8,
}

impl Default for StreamGen {
    fn default() -> Self {
        Self {
            streams: 4,
            gap: 6,
            store_percent: 20,
        }
    }
}

impl PatternGenerator for StreamGen {
    fn generate_records(&self, seed: u64, len: usize) -> Vec<TraceRecord> {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x5741_7645);
        let streams = self.streams.max(1);
        let mut cursors: Vec<u64> = (0..streams)
            .map(|i| {
                // Random line-aligned start within each stream's private
                // region; regions are spaced 2^24 lines (1 GiB) apart so
                // streams never collide.
                (rng.random_range(0..1u64 << 20) + ((i as u64) << 24)) * CACHE_LINE_BYTES as u64
            })
            .collect();
        let pcs: Vec<u64> = (0..streams).map(|i| 0x40_0000 + i as u64 * 0x40).collect();
        let mut records = Vec::with_capacity(len);
        for i in 0..len {
            let s = i % streams;
            let addr = cursors[s];
            cursors[s] += CACHE_LINE_BYTES as u64;
            let record = if rng.random_range(0..100u8) < self.store_percent {
                TraceRecord::store(pcs[s], addr)
            } else {
                TraceRecord::load(pcs[s], addr)
            };
            records.push(record.with_gap(self.gap));
        }
        records
    }
}

/// Constant-stride access over large arrays (e.g. column walks, large
/// structure iteration). Delta prefetchers handle this well.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StridedGen {
    /// Stride between consecutive accesses of one stream, in cache lines.
    pub stride_lines: u64,
    /// Number of concurrent streams.
    pub streams: usize,
    /// Non-memory instructions between accesses.
    pub gap: u32,
}

impl Default for StridedGen {
    fn default() -> Self {
        Self {
            stride_lines: 3,
            streams: 2,
            gap: 8,
        }
    }
}

impl PatternGenerator for StridedGen {
    fn generate_records(&self, seed: u64, len: usize) -> Vec<TraceRecord> {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x5354_5249);
        let streams = self.streams.max(1);
        let stride = self.stride_lines.max(1) * CACHE_LINE_BYTES as u64;
        let mut cursors: Vec<u64> = (0..streams)
            .map(|i| (rng.random_range(0..1u64 << 18) + ((i as u64) << 22)) * PAGE_BYTES as u64)
            .collect();
        let pcs: Vec<u64> = (0..streams).map(|i| 0x41_0000 + i as u64 * 0x20).collect();
        let mut records = Vec::with_capacity(len);
        for i in 0..len {
            let s = i % streams;
            let addr = cursors[s];
            cursors[s] += stride;
            records.push(TraceRecord::load(pcs[s], addr).with_gap(self.gap));
        }
        records
    }
}

/// Spatially-clustered accesses: a small set of "object layouts" (one per
/// PC), each touching a fixed set of offsets within a fresh 4 KB page, with
/// the per-page access order shuffled to model out-of-order and memory-
/// subsystem reordering. This is the structure DSPatch and SMS exploit
/// (paper, Figure 2), and the reordering is exactly what defeats purely
/// local delta histories.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpatialPatternGen {
    /// Number of distinct object layouts (and trigger PCs).
    pub layouts: usize,
    /// Lines touched per page visit.
    pub density: usize,
    /// Degree of reordering: accesses are shuffled within windows of this
    /// size (1 = program order).
    pub reorder_window: usize,
    /// Number of distinct pages cycled through before reuse.
    pub working_set_pages: usize,
    /// Non-memory instructions between accesses.
    pub gap: u32,
}

impl Default for SpatialPatternGen {
    fn default() -> Self {
        Self {
            layouts: 12,
            density: 10,
            reorder_window: 6,
            working_set_pages: 4096,
            gap: 10,
        }
    }
}

impl PatternGenerator for SpatialPatternGen {
    fn generate_records(&self, seed: u64, len: usize) -> Vec<TraceRecord> {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x5350_4154);
        let layouts = self.layouts.max(1);
        let density = self.density.clamp(1, LINES_PER_PAGE);
        // Fixed per-layout offset sets, stable across page visits.
        let layout_offsets: Vec<Vec<usize>> = (0..layouts)
            .map(|k| {
                let mut layout_rng =
                    SmallRng::seed_from_u64(seed ^ (k as u64).wrapping_mul(0x9E37));
                let mut offsets: Vec<usize> = (0..LINES_PER_PAGE).collect();
                offsets.shuffle(&mut layout_rng);
                offsets.truncate(density);
                offsets
            })
            .collect();
        let base_page = rng.random_range(0..1u64 << 20) << 4;
        let mut records = Vec::with_capacity(len);
        let mut page_cursor = 0u64;
        while records.len() < len {
            let k = rng.random_range(0..layouts);
            let page = base_page + (page_cursor % self.working_set_pages.max(1) as u64);
            page_cursor += 1;
            let pc = 0x42_0000 + k as u64 * 0x100;
            let mut visit: Vec<usize> = layout_offsets[k].clone();
            // The first access (the object header / trigger) is always the
            // same field, exactly as in the paper's Figure 2; the remaining
            // accesses are reordered by out-of-order execution, shuffled
            // within bounded windows.
            if visit.len() > 1 {
                let window = self.reorder_window.max(1).min(visit.len() - 1);
                for chunk in visit[1..].chunks_mut(window) {
                    chunk.shuffle(&mut rng);
                }
            }
            for (i, offset) in visit.into_iter().enumerate() {
                if records.len() >= len {
                    break;
                }
                let addr = page * PAGE_BYTES as u64 + (offset * CACHE_LINE_BYTES) as u64;
                // The object is traversed as a linked structure: every field
                // access chases a pointer produced by the previous one, so
                // without prefetching the visit is a serial chain of misses.
                // A spatial prefetcher that recognises the layout at the
                // trigger breaks that chain — which is exactly the benefit
                // the paper attributes to anchored spatial patterns.
                let _ = i;
                records.push(
                    TraceRecord::load(pc, addr)
                        .with_gap(self.gap)
                        .with_dependent(true),
                );
            }
        }
        records
    }
}

/// Sparse, irregular accesses: large footprint, only a handful of accesses
/// per page, little short-term reuse (graph / cloud / mcf-like behaviour).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct IrregularGen {
    /// Footprint in 4 KB pages.
    pub footprint_pages: u64,
    /// Accesses issued per visited page (1..=4 keeps it sparse).
    pub accesses_per_page: usize,
    /// Number of distinct PCs issuing the accesses.
    pub pcs: usize,
    /// Non-memory instructions between accesses.
    pub gap: u32,
}

impl Default for IrregularGen {
    fn default() -> Self {
        Self {
            footprint_pages: 1 << 16,
            accesses_per_page: 2,
            pcs: 24,
            gap: 14,
        }
    }
}

impl PatternGenerator for IrregularGen {
    fn generate_records(&self, seed: u64, len: usize) -> Vec<TraceRecord> {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x4952_5245);
        let per_page = self.accesses_per_page.clamp(1, LINES_PER_PAGE);
        let pcs = self.pcs.max(1);
        let mut records = Vec::with_capacity(len);
        while records.len() < len {
            let page = rng.random_range(0..self.footprint_pages.max(1));
            let pc = 0x43_0000 + rng.random_range(0..pcs as u64) * 0x10;
            for i in 0..per_page {
                if records.len() >= len {
                    break;
                }
                let offset = rng.random_range(0..LINES_PER_PAGE);
                let addr = page * PAGE_BYTES as u64 + (offset * CACHE_LINE_BYTES) as u64;
                records.push(
                    TraceRecord::load(pc, addr)
                        .with_gap(self.gap)
                        .with_dependent(i == 0),
                );
            }
        }
        records
    }
}

/// Dependent pointer chasing over a shuffled node array: consecutive
/// accesses land on unrelated lines, so almost nothing is prefetchable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PointerChaseGen {
    /// Number of nodes in the linked structure.
    pub nodes: u64,
    /// Size of one node in bytes (spacing between node addresses).
    pub node_bytes: u64,
    /// Non-memory instructions between accesses.
    pub gap: u32,
}

impl Default for PointerChaseGen {
    fn default() -> Self {
        Self {
            nodes: 1 << 16,
            node_bytes: 192,
            gap: 4,
        }
    }
}

impl PatternGenerator for PointerChaseGen {
    fn generate_records(&self, seed: u64, len: usize) -> Vec<TraceRecord> {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x5054_4348);
        let nodes = self.nodes.max(2);
        // A random permutation cycle approximated by a large-stride LCG walk,
        // keeping memory usage O(1) even for huge node counts.
        let multiplier = rng.random_range(1..(nodes / 2).max(2)) * 2 + 1; // odd multiplier => long period
        let mut current = rng.random_range(0..nodes);
        let pc = 0x44_0000;
        let mut records = Vec::with_capacity(len);
        for _ in 0..len {
            let addr = current * self.node_bytes.max(CACHE_LINE_BYTES as u64);
            records.push(
                TraceRecord::load(pc, addr)
                    .with_gap(self.gap)
                    .with_dependent(true),
            );
            current = (current.wrapping_mul(multiplier).wrapping_add(12345)) % nodes;
        }
        records
    }
}

/// Code-footprint-heavy behaviour (server / TPC-C-like): thousands of
/// distinct PCs, each touching a small spatial neighbourhood. Prefetchers
/// with large signature stores (16 K-entry SMS) retain these; 256-entry
/// tables thrash.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CodeHeavyGen {
    /// Number of distinct trigger PCs.
    pub distinct_pcs: usize,
    /// Lines touched around each visited location.
    pub burst: usize,
    /// Footprint in 4 KB pages.
    pub footprint_pages: u64,
    /// Non-memory instructions between accesses.
    pub gap: u32,
}

impl Default for CodeHeavyGen {
    fn default() -> Self {
        Self {
            distinct_pcs: 4096,
            burst: 3,
            footprint_pages: 1 << 15,
            gap: 12,
        }
    }
}

impl PatternGenerator for CodeHeavyGen {
    fn generate_records(&self, seed: u64, len: usize) -> Vec<TraceRecord> {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x434f_4445);
        let pcs = self.distinct_pcs.max(1);
        let burst = self.burst.clamp(1, LINES_PER_PAGE);
        let mut records = Vec::with_capacity(len);
        while records.len() < len {
            let pc_index = rng.random_range(0..pcs as u64);
            let pc = 0x45_0000 + pc_index * 0x14;
            // Each PC has an affine home region so its accesses repeat pages.
            let page = (pc_index * 37 + rng.random_range(0..8u64)) % self.footprint_pages.max(1);
            let start = rng.random_range(0..LINES_PER_PAGE - burst + 1);
            for b in 0..burst {
                if records.len() >= len {
                    break;
                }
                let addr = page * PAGE_BYTES as u64 + ((start + b) * CACHE_LINE_BYTES) as u64;
                records.push(
                    TraceRecord::load(pc, addr)
                        .with_gap(self.gap)
                        .with_dependent(b == 0),
                );
            }
        }
        records
    }
}

/// A weighted interleaving of other generators, used to compose realistic
/// category mixes (e.g. "Client" = streaming + spatial + irregular).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MixedGen {
    /// Weighted parts: `(weight, generator)`.
    pub parts: Vec<(u32, GeneratorSpec)>,
    /// Length of each contiguous phase taken from one part before switching.
    pub phase_len: usize,
}

impl MixedGen {
    /// Creates a mix from weighted parts.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty or all weights are zero.
    pub fn new(parts: Vec<(u32, GeneratorSpec)>) -> Self {
        assert!(!parts.is_empty(), "a mix needs at least one part");
        assert!(
            parts.iter().any(|(w, _)| *w > 0),
            "at least one weight must be positive"
        );
        Self {
            parts,
            phase_len: 256,
        }
    }
}

impl PatternGenerator for MixedGen {
    fn generate_records(&self, seed: u64, len: usize) -> Vec<TraceRecord> {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x4d49_5845);
        let total_weight: u64 = self.parts.iter().map(|(w, _)| u64::from(*w)).sum();
        // Pre-generate each part's full-length stream, then interleave by
        // phases drawn according to the weights.
        let streams: Vec<Vec<TraceRecord>> = self
            .parts
            .iter()
            .enumerate()
            .map(|(i, (_, spec))| spec.generate_records(seed.wrapping_add(i as u64 * 7919), len))
            .collect();
        let mut cursors = vec![0usize; streams.len()];
        let mut records = Vec::with_capacity(len);
        let phase = self.phase_len.max(1);
        while records.len() < len {
            let mut pick = rng.random_range(0..total_weight.max(1));
            let mut index = 0;
            for (i, (w, _)) in self.parts.iter().enumerate() {
                if pick < u64::from(*w) {
                    index = i;
                    break;
                }
                pick -= u64::from(*w);
            }
            let stream = &streams[index];
            for _ in 0..phase {
                if records.len() >= len {
                    break;
                }
                let cursor = cursors[index] % stream.len().max(1);
                records.push(stream[cursor]);
                cursors[index] += 1;
            }
        }
        records
    }
}

/// A serializable, cloneable description of any generator, so workload
/// specifications can be stored and shared.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum GeneratorSpec {
    /// Sequential streaming.
    Stream(StreamGen),
    /// Constant-stride streams.
    Strided(StridedGen),
    /// Spatially-clustered, reordered object accesses.
    Spatial(SpatialPatternGen),
    /// Sparse irregular accesses.
    Irregular(IrregularGen),
    /// Dependent pointer chasing.
    PointerChase(PointerChaseGen),
    /// Large code footprint with small bursts.
    CodeHeavy(CodeHeavyGen),
    /// Weighted mix of other generators.
    Mixed(MixedGen),
}

impl PatternGenerator for GeneratorSpec {
    fn generate_records(&self, seed: u64, len: usize) -> Vec<TraceRecord> {
        match self {
            GeneratorSpec::Stream(g) => g.generate_records(seed, len),
            GeneratorSpec::Strided(g) => g.generate_records(seed, len),
            GeneratorSpec::Spatial(g) => g.generate_records(seed, len),
            GeneratorSpec::Irregular(g) => g.generate_records(seed, len),
            GeneratorSpec::PointerChase(g) => g.generate_records(seed, len),
            GeneratorSpec::CodeHeavy(g) => g.generate_records(seed, len),
            GeneratorSpec::Mixed(g) => g.generate_records(seed, len),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_specs() -> Vec<GeneratorSpec> {
        vec![
            GeneratorSpec::Stream(StreamGen::default()),
            GeneratorSpec::Strided(StridedGen::default()),
            GeneratorSpec::Spatial(SpatialPatternGen::default()),
            GeneratorSpec::Irregular(IrregularGen::default()),
            GeneratorSpec::PointerChase(PointerChaseGen::default()),
            GeneratorSpec::CodeHeavy(CodeHeavyGen::default()),
            GeneratorSpec::Mixed(MixedGen::new(vec![
                (3, GeneratorSpec::Stream(StreamGen::default())),
                (1, GeneratorSpec::Irregular(IrregularGen::default())),
            ])),
        ]
    }

    #[test]
    fn generators_are_deterministic() {
        for spec in all_specs() {
            let a = spec.generate_records(42, 2000);
            let b = spec.generate_records(42, 2000);
            assert_eq!(a, b, "{spec:?} must be deterministic");
        }
    }

    #[test]
    fn different_seeds_differ() {
        for spec in all_specs() {
            let a = spec.generate_records(1, 2000);
            let b = spec.generate_records(2, 2000);
            assert_ne!(a, b, "{spec:?} should vary with the seed");
        }
    }

    #[test]
    fn generators_honour_requested_length() {
        for spec in all_specs() {
            assert_eq!(spec.generate_records(7, 1234).len(), 1234);
            assert_eq!(spec.generate_records(7, 0).len(), 0);
        }
    }

    #[test]
    fn stream_is_dense_and_sequential() {
        let records = StreamGen {
            streams: 1,
            gap: 0,
            store_percent: 0,
        }
        .generate_records(5, 100);
        for pair in records.windows(2) {
            let delta = pair[1].addr.line().delta_from(pair[0].addr.line());
            assert_eq!(delta, 1, "single stream must be unit-stride");
        }
    }

    #[test]
    fn strided_keeps_its_stride() {
        let gen = StridedGen {
            stride_lines: 5,
            streams: 1,
            gap: 0,
        };
        let records = gen.generate_records(9, 50);
        for pair in records.windows(2) {
            assert_eq!(pair[1].addr.line().delta_from(pair[0].addr.line()), 5);
        }
    }

    #[test]
    fn spatial_reuses_layouts_across_pages() {
        let gen = SpatialPatternGen {
            layouts: 2,
            density: 8,
            reorder_window: 4,
            working_set_pages: 1 << 20,
            gap: 0,
        };
        let records = gen.generate_records(11, 4000);
        // Group by PC and page; every page visited by one PC must touch the
        // same set of page offsets (the layout), whatever the order.
        use std::collections::BTreeMap;
        let mut per_pc_page: BTreeMap<(u64, u64), Vec<usize>> = BTreeMap::new();
        for r in &records {
            per_pc_page
                .entry((r.pc.as_u64(), r.addr.page().as_u64()))
                .or_default()
                .push(r.addr.page_line_offset());
        }
        let mut per_pc_sets: BTreeMap<u64, Vec<Vec<usize>>> = BTreeMap::new();
        for ((pc, _page), mut offsets) in per_pc_page {
            offsets.sort_unstable();
            offsets.dedup();
            per_pc_sets.entry(pc).or_default().push(offsets);
        }
        for (pc, sets) in per_pc_sets {
            let complete: Vec<&Vec<usize>> = sets.iter().filter(|s| s.len() == 8).collect();
            assert!(
                complete.len() > 1,
                "pc {pc:#x} should fully visit several pages"
            );
            for s in &complete {
                assert_eq!(
                    *s, complete[0],
                    "layout must repeat across pages for pc {pc:#x}"
                );
            }
        }
    }

    #[test]
    fn irregular_has_large_page_footprint() {
        let records = IrregularGen::default().generate_records(3, 8000);
        let mut pages: Vec<u64> = records.iter().map(|r| r.addr.page().as_u64()).collect();
        pages.sort_unstable();
        pages.dedup();
        assert!(
            pages.len() > 2000,
            "sparse generator must spread over many pages"
        );
    }

    #[test]
    fn pointer_chase_has_low_spatial_locality() {
        let records = PointerChaseGen::default().generate_records(17, 4000);
        let sequential = records
            .windows(2)
            .filter(|w| (w[1].addr.line().delta_from(w[0].addr.line())).abs() <= 1)
            .count();
        assert!(
            sequential < records.len() / 10,
            "consecutive chase accesses should rarely be adjacent ({sequential})"
        );
    }

    #[test]
    fn code_heavy_has_thousands_of_pcs() {
        let records = CodeHeavyGen::default().generate_records(23, 30_000);
        let mut pcs: Vec<u64> = records.iter().map(|r| r.pc.as_u64()).collect();
        pcs.sort_unstable();
        pcs.dedup();
        assert!(
            pcs.len() > 2000,
            "expected thousands of distinct PCs, got {}",
            pcs.len()
        );
    }

    #[test]
    fn mixed_contains_accesses_from_every_part() {
        let mix = MixedGen::new(vec![
            (1, GeneratorSpec::Stream(StreamGen::default())),
            (1, GeneratorSpec::PointerChase(PointerChaseGen::default())),
        ]);
        let records = mix.generate_records(31, 10_000);
        let stream_pcs = records.iter().filter(|r| r.pc.as_u64() < 0x41_0000).count();
        let chase_pcs = records
            .iter()
            .filter(|r| r.pc.as_u64() == 0x44_0000)
            .count();
        assert!(stream_pcs > 0 && chase_pcs > 0);
    }

    #[test]
    #[should_panic(expected = "at least one part")]
    fn empty_mix_is_rejected() {
        let _ = MixedGen::new(Vec::new());
    }
}
