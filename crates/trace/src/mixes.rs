//! Multi-programmed workload mixes.
//!
//! The paper's multi-programmed experiments (Section 5.4, Figures 17 and 18)
//! run four cores sharing an 8 MB LLC and two DDR4 channels. Two mix families
//! are used:
//!
//! * **homogeneous** — four copies of the same memory-intensive workload,
//!   one per core (42 mixes, one per memory-intensive workload);
//! * **heterogeneous** — 75 mixes of four workloads drawn at random from the
//!   42 memory-intensive workloads.

use crate::workloads::{memory_intensive_suite, WorkloadSpec};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A 4-core workload mix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadMix {
    /// Mix name ("4x mcf06" or "mix-17").
    pub name: String,
    /// One workload per core, in core order.
    pub workloads: Vec<WorkloadSpec>,
}

impl WorkloadMix {
    /// Number of cores the mix occupies.
    pub fn cores(&self) -> usize {
        self.workloads.len()
    }

    /// Returns whether every core runs the same workload.
    pub fn is_homogeneous(&self) -> bool {
        self.workloads
            .windows(2)
            .all(|pair| pair[0].name == pair[1].name)
    }
}

/// Builds the 42 homogeneous mixes: four copies of each memory-intensive
/// workload. Each copy gets a distinct seed so the four cores do not access
/// identical addresses in lock step (they share the program, not the data).
pub fn homogeneous_mixes(cores: usize) -> Vec<WorkloadMix> {
    memory_intensive_suite()
        .into_iter()
        .map(|base| {
            let workloads = (0..cores)
                .map(|core| {
                    let mut copy = base.clone();
                    copy.seed = base.seed.wrapping_mul(31).wrapping_add(core as u64 + 1);
                    copy
                })
                .collect();
            WorkloadMix {
                name: format!("{}x {}", cores, base.name),
                workloads,
            }
        })
        .collect()
}

/// Builds `count` heterogeneous mixes of `cores` workloads each, drawn
/// uniformly (with a fixed seed) from the memory-intensive subset.
pub fn heterogeneous_mixes(count: usize, cores: usize, seed: u64) -> Vec<WorkloadMix> {
    let pool = memory_intensive_suite();
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x4d49_5853);
    (0..count)
        .map(|i| {
            let workloads: Vec<WorkloadSpec> = (0..cores)
                .map(|_| pool[rng.random_range(0..pool.len())].clone())
                .collect();
            WorkloadMix {
                name: format!("mix-{i:02}"),
                workloads,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn there_are_42_homogeneous_mixes_of_4_cores() {
        let mixes = homogeneous_mixes(4);
        assert_eq!(mixes.len(), 42);
        assert!(mixes.iter().all(|m| m.cores() == 4));
        assert!(mixes.iter().all(WorkloadMix::is_homogeneous));
    }

    #[test]
    fn homogeneous_copies_use_distinct_seeds() {
        let mixes = homogeneous_mixes(4);
        for mix in &mixes {
            let mut seeds: Vec<u64> = mix.workloads.iter().map(|w| w.seed).collect();
            seeds.sort_unstable();
            seeds.dedup();
            assert_eq!(seeds.len(), 4, "cores of {} must not alias", mix.name);
        }
    }

    #[test]
    fn heterogeneous_mixes_have_requested_shape() {
        let mixes = heterogeneous_mixes(75, 4, 7);
        assert_eq!(mixes.len(), 75);
        assert!(mixes.iter().all(|m| m.cores() == 4));
        // At least some mixes must actually be heterogeneous.
        assert!(mixes.iter().any(|m| !m.is_homogeneous()));
    }

    #[test]
    fn heterogeneous_mixes_are_seed_deterministic() {
        let a = heterogeneous_mixes(10, 4, 3);
        let b = heterogeneous_mixes(10, 4, 3);
        let c = heterogeneous_mixes(10, 4, 4);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn cores_are_consistent_across_all_generated_mixes() {
        for cores in 1..=6 {
            for mix in homogeneous_mixes(cores) {
                assert_eq!(mix.cores(), cores, "{}", mix.name);
            }
            for mix in heterogeneous_mixes(15, cores, 0xD5) {
                assert_eq!(mix.cores(), cores, "{}", mix.name);
            }
        }
    }

    #[test]
    fn heterogeneous_mixes_draw_only_memory_intensive_workloads() {
        let pool: std::collections::BTreeSet<String> = memory_intensive_suite()
            .into_iter()
            .map(|w| w.name)
            .collect();
        for mix in heterogeneous_mixes(30, 4, 7) {
            for workload in &mix.workloads {
                assert!(pool.contains(&workload.name), "{}", workload.name);
            }
        }
    }

    #[test]
    fn mix_names_are_unique() {
        let mixes = homogeneous_mixes(4);
        let mut names: Vec<&str> = mixes.iter().map(|m| m.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), mixes.len());
    }
}
