//! Memory-access traces and synthetic workload generation.
//!
//! The DSPatch paper evaluates 75 workloads drawn from SPEC CPU2006/2017,
//! server, cloud and SYSmark suites — traces we do not have. This crate
//! substitutes **deterministic synthetic trace generators** that reproduce
//! the *access-pattern structure* the paper attributes to each workload
//! category (streaming, strided, spatially-clustered with out-of-order
//! reordering, sparse-irregular, pointer-chasing, code-heavy), so that the
//! relative behaviour of the prefetchers — the quantity every figure reports
//! — is preserved. See `DESIGN.md` for the substitution rationale.
//!
//! * [`TraceRecord`] / [`Trace`] — the trace representation consumed by the
//!   simulator (`dspatch-sim`).
//! * [`source`] — the streaming [`TraceSource`] API: pull-based,
//!   O(1)-memory trace delivery (lazy synthetic sources, the owned-trace
//!   adapter, chained sources). This is how the simulator consumes traces;
//!   materializing a `Trace` is only needed for random-access analysis.
//! * [`synth`] — the pattern generators, each an incremental
//!   [`RecordStream`] whose materialized form is the stream collected.
//! * [`workloads`] — the named 75-workload suite, its 9 categories
//!   (Table 4) and the 42-workload memory-intensive subset.
//! * [`mixes`] — homogeneous and heterogeneous 4-core mixes for the
//!   multi-programmed experiments (Figures 17 and 18).
//! * [`io`] — a small binary on-disk format plus streaming file-backed
//!   sources (native binary and ChampSim-style text importers).
//!
//! # Example
//!
//! ```
//! use dspatch_trace::workloads::{suite, WorkloadCategory};
//!
//! let all = suite();
//! assert_eq!(all.len(), 75);
//! let cloud: Vec<_> = all.iter().filter(|w| w.category == WorkloadCategory::Cloud).collect();
//! let trace = cloud[0].generate(10_000);
//! assert_eq!(trace.len(), 10_000);
//! ```

pub mod io;
pub mod mixes;
pub use io::TraceFileError;
pub mod record;
pub mod source;
pub mod synth;
pub mod workloads;

pub use mixes::{heterogeneous_mixes, homogeneous_mixes, WorkloadMix};
pub use record::{Trace, TraceRecord};
pub use source::{
    collect_source, ChainSource, IntoTraceSource, LengthHint, MaterializedSource, SynthSource,
    TraceMeta, TraceSource,
};
pub use synth::{
    CodeHeavyGen, GeneratorSpec, IrregularGen, MixedGen, PatternGenerator, PointerChaseGen,
    RecordStream, SpatialPatternGen, StreamGen, StridedGen,
};
pub use workloads::{memory_intensive_suite, suite, WorkloadCategory, WorkloadSpec};
