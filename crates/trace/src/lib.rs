//! Memory-access traces and synthetic workload generation.
//!
//! The DSPatch paper evaluates 75 workloads drawn from SPEC CPU2006/2017,
//! server, cloud and SYSmark suites — traces we do not have. This crate
//! substitutes **deterministic synthetic trace generators** that reproduce
//! the *access-pattern structure* the paper attributes to each workload
//! category (streaming, strided, spatially-clustered with out-of-order
//! reordering, sparse-irregular, pointer-chasing, code-heavy), so that the
//! relative behaviour of the prefetchers — the quantity every figure reports
//! — is preserved. See `DESIGN.md` for the substitution rationale.
//!
//! * [`TraceRecord`] / [`Trace`] — the trace representation consumed by the
//!   simulator (`dspatch-sim`).
//! * [`synth`] — the pattern generators.
//! * [`workloads`] — the named 75-workload suite, its 9 categories
//!   (Table 4) and the 42-workload memory-intensive subset.
//! * [`mixes`] — homogeneous and heterogeneous 4-core mixes for the
//!   multi-programmed experiments (Figures 17 and 18).
//! * [`io`] — a small binary on-disk format for saving and reloading traces.
//!
//! # Example
//!
//! ```
//! use dspatch_trace::workloads::{suite, WorkloadCategory};
//!
//! let all = suite();
//! assert_eq!(all.len(), 75);
//! let cloud: Vec<_> = all.iter().filter(|w| w.category == WorkloadCategory::Cloud).collect();
//! let trace = cloud[0].generate(10_000);
//! assert_eq!(trace.len(), 10_000);
//! ```

pub mod io;
pub mod mixes;
pub mod record;
pub mod synth;
pub mod workloads;

pub use mixes::{heterogeneous_mixes, homogeneous_mixes, WorkloadMix};
pub use record::{Trace, TraceRecord};
pub use synth::{
    CodeHeavyGen, IrregularGen, MixedGen, PatternGenerator, PointerChaseGen, SpatialPatternGen,
    StreamGen, StridedGen,
};
pub use workloads::{memory_intensive_suite, suite, WorkloadCategory, WorkloadSpec};
