//! Trace representation.
//!
//! A trace is a sequence of memory accesses annotated with the number of
//! non-memory instructions executed since the previous access (`gap`). This
//! is the minimal information the approximate core model needs to account
//! for both memory-level parallelism and non-memory work.

use dspatch_types::{AccessKind, Addr, MemoryAccess, Pc};
use serde::{Deserialize, Serialize};

/// One memory access in a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TraceRecord {
    /// Program counter of the memory instruction.
    pub pc: Pc,
    /// Byte address accessed.
    pub addr: Addr,
    /// Load or store.
    pub kind: AccessKind,
    /// Number of non-memory instructions executed immediately before this
    /// access. Together with the access itself, one record therefore
    /// represents `gap + 1` instructions.
    pub gap: u32,
    /// Whether the address of this access depends on the value returned by
    /// the previous memory access (pointer chasing). Dependent accesses
    /// cannot overlap with their producer in the core model, which is what
    /// makes linked-data-structure traversals latency-bound.
    #[serde(default)]
    pub dependent: bool,
}

impl TraceRecord {
    /// Creates a load record with no preceding non-memory instructions.
    pub fn load(pc: u64, addr: u64) -> Self {
        Self {
            pc: Pc::new(pc),
            addr: Addr::new(addr),
            kind: AccessKind::Load,
            gap: 0,
            dependent: false,
        }
    }

    /// Creates a store record with no preceding non-memory instructions.
    pub fn store(pc: u64, addr: u64) -> Self {
        Self {
            pc: Pc::new(pc),
            addr: Addr::new(addr),
            kind: AccessKind::Store,
            gap: 0,
            dependent: false,
        }
    }

    /// Sets the non-memory instruction gap.
    pub fn with_gap(mut self, gap: u32) -> Self {
        self.gap = gap;
        self
    }

    /// Marks the access as dependent on the previous memory access.
    pub fn with_dependent(mut self, dependent: bool) -> Self {
        self.dependent = dependent;
        self
    }

    /// Converts the record into the [`MemoryAccess`] the prefetcher API uses.
    pub fn to_access(self) -> MemoryAccess {
        MemoryAccess::new(self.pc, self.addr, self.kind)
    }

    /// Number of instructions this record represents (`gap + 1`).
    pub fn instructions(&self) -> u64 {
        u64::from(self.gap) + 1
    }
}

/// A named sequence of memory accesses.
///
/// # Example
///
/// ```
/// use dspatch_trace::{Trace, TraceRecord};
///
/// let trace = Trace::new(
///     "toy",
///     vec![
///         TraceRecord::load(0x400, 0x1000).with_gap(3),
///         TraceRecord::store(0x404, 0x1040),
///     ],
/// );
/// assert_eq!(trace.len(), 2);
/// assert_eq!(trace.instruction_count(), 5);
/// assert_eq!(trace.footprint_lines(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Trace {
    /// Human-readable workload name.
    pub name: String,
    /// The access sequence.
    pub records: Vec<TraceRecord>,
}

impl Trace {
    /// Creates a trace.
    pub fn new(name: impl Into<String>, records: Vec<TraceRecord>) -> Self {
        Self {
            name: name.into(),
            records,
        }
    }

    /// Number of memory accesses.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Returns whether the trace has no accesses.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Total number of instructions represented (memory plus gaps).
    pub fn instruction_count(&self) -> u64 {
        self.records.iter().map(TraceRecord::instructions).sum()
    }

    /// Number of distinct cache lines touched.
    pub fn footprint_lines(&self) -> usize {
        let mut lines: Vec<u64> = self
            .records
            .iter()
            .map(|r| r.addr.line().as_u64())
            .collect();
        lines.sort_unstable();
        lines.dedup();
        lines.len()
    }

    /// Number of distinct 4 KB pages touched.
    pub fn footprint_pages(&self) -> usize {
        let mut pages: Vec<u64> = self
            .records
            .iter()
            .map(|r| r.addr.page().as_u64())
            .collect();
        pages.sort_unstable();
        pages.dedup();
        pages.len()
    }

    /// Number of distinct program counters appearing in the trace.
    pub fn distinct_pcs(&self) -> usize {
        let mut pcs: Vec<u64> = self.records.iter().map(|r| r.pc.as_u64()).collect();
        pcs.sort_unstable();
        pcs.dedup();
        pcs.len()
    }

    /// Iterates over the records.
    pub fn iter(&self) -> impl Iterator<Item = &TraceRecord> {
        self.records.iter()
    }

    /// Truncates the trace to at most `limit` accesses.
    pub fn truncate(&mut self, limit: usize) {
        self.records.truncate(limit);
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a TraceRecord;
    type IntoIter = std::slice::Iter<'a, TraceRecord>;

    fn into_iter(self) -> Self::IntoIter {
        self.records.iter()
    }
}

impl Extend<TraceRecord> for Trace {
    fn extend<T: IntoIterator<Item = TraceRecord>>(&mut self, iter: T) {
        self.records.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_instruction_accounting() {
        assert_eq!(TraceRecord::load(1, 2).instructions(), 1);
        assert_eq!(TraceRecord::load(1, 2).with_gap(9).instructions(), 10);
    }

    #[test]
    fn record_conversion_preserves_fields() {
        let r = TraceRecord::store(0x400100, 0xdead00);
        let a = r.to_access();
        assert_eq!(a.pc.as_u64(), 0x400100);
        assert_eq!(a.addr.as_u64(), 0xdead00);
        assert!(!a.kind.is_load());
    }

    #[test]
    fn footprint_counts_distinct_lines_and_pages() {
        let trace = Trace::new(
            "t",
            vec![
                TraceRecord::load(1, 0),
                TraceRecord::load(1, 32),   // same line
                TraceRecord::load(1, 64),   // new line, same page
                TraceRecord::load(1, 8192), // new page
            ],
        );
        assert_eq!(trace.footprint_lines(), 3);
        assert_eq!(trace.footprint_pages(), 2);
        assert_eq!(trace.distinct_pcs(), 1);
    }

    #[test]
    fn empty_trace_behaves() {
        let trace = Trace::new("empty", Vec::new());
        assert!(trace.is_empty());
        assert_eq!(trace.instruction_count(), 0);
        assert_eq!(trace.footprint_lines(), 0);
    }

    #[test]
    fn extend_and_truncate() {
        let mut trace = Trace::new("t", vec![TraceRecord::load(1, 0)]);
        trace.extend([TraceRecord::load(1, 64), TraceRecord::load(1, 128)]);
        assert_eq!(trace.len(), 3);
        trace.truncate(2);
        assert_eq!(trace.len(), 2);
    }

    #[test]
    fn iteration_orders_match() {
        let records = vec![TraceRecord::load(1, 0), TraceRecord::load(2, 64)];
        let trace = Trace::new("t", records.clone());
        let collected: Vec<TraceRecord> = trace.iter().copied().collect();
        assert_eq!(collected, records);
        let by_ref: Vec<TraceRecord> = (&trace).into_iter().copied().collect();
        assert_eq!(by_ref, records);
    }
}
