//! On-disk trace formats: the native binary format plus streaming,
//! file-backed [`TraceSource`]s so external traces replay with O(1) memory.
//!
//! ## Native binary format (`DSPT`)
//!
//! ```text
//! magic "DSPT"  | u32 version | u32 name_len | name bytes
//! u64 record_count | records: { u64 pc | u64 addr | u8 flags | u32 gap } ...
//!
//! `flags` bit 0 is the store bit, bit 1 the dependent-load bit.
//! ```
//!
//! All integers are little-endian. [`write_trace`] / [`read_trace`]
//! materialize whole traces (caching small ones is still convenient);
//! [`FileTraceSource`] streams the same format record by record through a
//! buffered reader, so a multi-gigabyte trace costs a few kilobytes of
//! resident memory.
//!
//! ## ChampSim-style text format
//!
//! [`ChampsimTextSource`] imports the line-oriented text form commonly used
//! to exchange memory-access traces: one access per line,
//!
//! ```text
//! <pc> <addr> <L|S> [gap] [D]
//! ```
//!
//! where `pc` and `addr` are decimal or `0x`-prefixed hex, the kind accepts
//! `L`/`R`/`LOAD`/`READ` and `S`/`W`/`STORE`/`WRITE` (case-insensitive),
//! `gap` is the optional decimal count of non-memory instructions before
//! the access, and a trailing `D` marks the access dependent on its
//! predecessor. Blank lines and `#` comments are skipped. The whole file is
//! validated (and its record/instruction counts established) in one
//! constant-memory pass at open time, so `dspatch-lab --trace-file` reports
//! malformed lines with their line number before any simulation starts.
//!
//! [`open_trace_source`] sniffs the magic bytes and picks the right reader,
//! so callers never dispatch on file extensions.

use crate::record::{Trace, TraceRecord};
use crate::source::{LengthHint, TraceMeta, TraceSource};
use std::fs::File;
use std::io::{self, BufRead, BufReader, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

const MAGIC: &[u8; 4] = b"DSPT";
const VERSION: u32 = 1;
/// On-disk bytes per record: pc (8) + addr (8) + flags (1) + gap (4).
const RECORD_BYTES: u64 = 21;
/// Upper bound on the embedded trace-name length. A hostile header can claim
/// up to 4 GiB here; cap it before allocating the name buffer.
const MAX_NAME_LEN: u32 = 1 << 16;

/// A typed, contextual error from opening or validating a trace file.
///
/// Every variant carries the offending path; parse-level variants add the
/// structural detail (observed length, line number, header field) so callers
/// can report actionable messages without string-matching.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceFileError {
    /// OS-level failure opening, reading, or statting the file.
    Io {
        /// The file the operation targeted.
        path: PathBuf,
        /// The failing operation (`"open"`, `"read"`, `"stat"`, `"seek"`).
        op: &'static str,
        /// The underlying `io::Error`, rendered.
        message: String,
    },
    /// The file is shorter than the 4-byte format magic, so its format
    /// cannot even be sniffed.
    TooShort {
        /// The file in question.
        path: PathBuf,
        /// Its observed length in bytes.
        len: u64,
    },
    /// Structural problem in a `DSPT` binary header (bad magic, unsupported
    /// version, oversized or non-UTF-8 name, truncated fixed fields).
    Header {
        /// The file in question.
        path: PathBuf,
        /// What was wrong with the header.
        message: String,
    },
    /// The header's record count is inconsistent with the file size (a
    /// truncated, overgrown, or corrupt file).
    SizeMismatch {
        /// The file in question.
        path: PathBuf,
        /// The record count the header promised.
        record_count: u64,
        /// The observed file size in bytes.
        actual_bytes: u64,
    },
    /// A malformed line in a ChampSim-style text trace.
    Malformed {
        /// The file in question.
        path: PathBuf,
        /// 1-based line number of the first bad line.
        line: u64,
        /// What was wrong with it.
        message: String,
    },
}

impl std::fmt::Display for TraceFileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io { path, op, message } => {
                write!(f, "{}: {op} failed: {message}", path.display())
            }
            Self::TooShort { path, len } => write!(
                f,
                "{}: file is {len} bytes, shorter than the 4-byte format magic",
                path.display()
            ),
            Self::Header { path, message } => {
                write!(f, "{}: bad trace header: {message}", path.display())
            }
            Self::SizeMismatch {
                path,
                record_count,
                actual_bytes,
            } => write!(
                f,
                "{}: header promises {record_count} records but the file is \
                 {actual_bytes} bytes",
                path.display()
            ),
            Self::Malformed {
                path,
                line,
                message,
            } => write!(f, "{}:{line}: {message}", path.display()),
        }
    }
}

impl std::error::Error for TraceFileError {}

impl TraceFileError {
    fn io(path: &Path, op: &'static str, error: &io::Error) -> Self {
        Self::Io {
            path: path.to_path_buf(),
            op,
            message: error.to_string(),
        }
    }

    /// Maps an `io::Error` from header parsing to the right variant:
    /// `InvalidData` carries a structural message, everything else (notably
    /// `UnexpectedEof` from a truncated header) is wrapped with the
    /// operation name.
    fn from_header_error(path: &Path, error: &io::Error) -> Self {
        match error.kind() {
            io::ErrorKind::InvalidData => Self::Header {
                path: path.to_path_buf(),
                message: error.to_string(),
            },
            io::ErrorKind::UnexpectedEof => Self::Header {
                path: path.to_path_buf(),
                message: "truncated header".to_owned(),
            },
            _ => Self::io(path, "read", error),
        }
    }
}

/// Writes a trace to `writer` in the binary format.
///
/// # Errors
///
/// Returns any I/O error from the underlying writer.
pub fn write_trace<W: Write>(trace: &Trace, mut writer: W) -> io::Result<()> {
    writer.write_all(MAGIC)?;
    writer.write_all(&VERSION.to_le_bytes())?;
    let name = trace.name.as_bytes();
    writer.write_all(&(name.len() as u32).to_le_bytes())?;
    writer.write_all(name)?;
    writer.write_all(&(trace.records.len() as u64).to_le_bytes())?;
    for record in &trace.records {
        write_record(&mut writer, record)?;
    }
    Ok(())
}

fn write_record<W: Write>(writer: &mut W, record: &TraceRecord) -> io::Result<()> {
    writer.write_all(&record.pc.as_u64().to_le_bytes())?;
    writer.write_all(&record.addr.as_u64().to_le_bytes())?;
    let flags = u8::from(!record.kind.is_load()) | (u8::from(record.dependent) << 1);
    writer.write_all(&[flags])?;
    writer.write_all(&record.gap.to_le_bytes())
}

/// Parses the fixed header, returning `(name, record_count)`.
fn read_header<R: Read>(reader: &mut R) -> io::Result<(String, u64)> {
    let mut magic = [0u8; 4];
    reader.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "not a DSPT trace file",
        ));
    }
    let version = read_u32(reader)?;
    if version != VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unsupported trace version {version}"),
        ));
    }
    let name_len = read_u32(reader)?;
    // Cap before allocating: a hostile header can claim a 4 GiB name.
    if name_len > MAX_NAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("trace name length {name_len} exceeds the {MAX_NAME_LEN}-byte cap"),
        ));
    }
    let mut name_bytes = vec![0u8; name_len as usize];
    reader.read_exact(&mut name_bytes)?;
    let name =
        String::from_utf8(name_bytes).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    let count = read_u64(reader)?;
    Ok((name, count))
}

fn read_record<R: Read>(reader: &mut R) -> io::Result<TraceRecord> {
    let pc = read_u64(reader)?;
    let addr = read_u64(reader)?;
    let mut flags = [0u8; 1];
    reader.read_exact(&mut flags)?;
    let gap = read_u32(reader)?;
    let record = if flags[0] & 1 == 0 {
        TraceRecord::load(pc, addr)
    } else {
        TraceRecord::store(pc, addr)
    };
    Ok(record.with_gap(gap).with_dependent(flags[0] & 2 != 0))
}

/// Reads a trace previously written by [`write_trace`].
///
/// # Errors
///
/// Returns an error if the stream is truncated, the magic number or version
/// does not match, or the embedded name is not valid UTF-8.
pub fn read_trace<R: Read>(mut reader: R) -> io::Result<Trace> {
    let (name, count) = read_header(&mut reader)?;
    let mut records = Vec::with_capacity((count as usize).min(1 << 24));
    for _ in 0..count {
        records.push(read_record(&mut reader)?);
    }
    Ok(Trace::new(name, records))
}

fn read_u32<R: Read>(reader: &mut R) -> io::Result<u32> {
    let mut buf = [0u8; 4];
    reader.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

fn read_u64<R: Read>(reader: &mut R) -> io::Result<u64> {
    let mut buf = [0u8; 8];
    reader.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

/// Convenience wrapper writing a trace to a file path.
///
/// # Errors
///
/// Returns any error from creating or writing the file.
pub fn save_trace(trace: &Trace, path: &std::path::Path) -> io::Result<()> {
    let file = std::fs::File::create(path)?;
    write_trace(trace, io::BufWriter::new(file))
}

/// Convenience wrapper reading a trace from a file path.
///
/// # Errors
///
/// Returns any error from opening or parsing the file.
pub fn load_trace(path: &std::path::Path) -> io::Result<Trace> {
    let file = std::fs::File::open(path)?;
    read_trace(io::BufReader::new(file))
}

/// A streaming [`TraceSource`] over a `DSPT` binary trace file: the header
/// is parsed and the file size validated at open time, after which records
/// are decoded one at a time through a buffered reader — resident memory is
/// the buffer, not the trace.
pub struct FileTraceSource {
    path: PathBuf,
    reader: BufReader<File>,
    name: String,
    record_count: u64,
    records_start: u64,
    read: u64,
}

impl FileTraceSource {
    /// Opens a binary trace file for streaming.
    ///
    /// # Errors
    ///
    /// Returns a [`TraceFileError`] if the file cannot be opened, is shorter
    /// than the format magic, the header is malformed, or the file size does
    /// not match the header's record count (a truncated or overgrown file).
    pub fn open(path: impl AsRef<Path>) -> Result<Self, TraceFileError> {
        let path = path.as_ref().to_path_buf();
        let actual = std::fs::metadata(&path)
            .map_err(|e| TraceFileError::io(&path, "stat", &e))?
            .len();
        if actual < MAGIC.len() as u64 {
            return Err(TraceFileError::TooShort { path, len: actual });
        }
        let file = File::open(&path).map_err(|e| TraceFileError::io(&path, "open", &e))?;
        let mut reader = BufReader::new(file);
        let (name, record_count) =
            read_header(&mut reader).map_err(|e| TraceFileError::from_header_error(&path, &e))?;
        let records_start = (4 + 4 + 4 + name.len() + 8) as u64;
        // Checked arithmetic: a corrupt header with a record count near
        // u64::MAX must be a clean typed error, not an overflow.
        let expected = record_count
            .checked_mul(RECORD_BYTES)
            .and_then(|bytes| bytes.checked_add(records_start));
        if expected != Some(actual) {
            return Err(TraceFileError::SizeMismatch {
                path,
                record_count,
                actual_bytes: actual,
            });
        }
        Ok(Self {
            path,
            reader,
            name,
            record_count,
            records_start,
            read: 0,
        })
    }

    /// The path the source reads from.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl std::fmt::Debug for FileTraceSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FileTraceSource")
            .field("path", &self.path)
            .field("name", &self.name)
            .field("record_count", &self.record_count)
            .field("read", &self.read)
            .finish()
    }
}

impl TraceSource for FileTraceSource {
    /// # Panics
    ///
    /// Panics if the file shrinks or errors underneath the reader after the
    /// open-time size validation (e.g. it was modified mid-run).
    fn next_record(&mut self) -> Option<TraceRecord> {
        if self.read >= self.record_count {
            return None;
        }
        let record = read_record(&mut self.reader).unwrap_or_else(|e| {
            panic!(
                "{}: record {} unreadable after open-time validation \
                 (file changed mid-run?): {e}",
                self.path.display(),
                self.read
            )
        });
        self.read += 1;
        Some(record)
    }

    fn reset(&mut self) {
        self.reader
            .seek(SeekFrom::Start(self.records_start))
            .unwrap_or_else(|e| panic!("{}: seek failed: {e}", self.path.display()));
        self.read = 0;
    }

    fn fork(&self) -> Box<dyn TraceSource> {
        Box::new(Self::open(&self.path).unwrap_or_else(|e| {
            panic!(
                "{}: reopening for fork failed (file changed mid-run?): {e}",
                self.path.display()
            )
        }))
    }

    fn meta(&self) -> TraceMeta {
        TraceMeta {
            name: self.name.clone(),
            accesses: LengthHint::Exact(self.record_count),
            instructions: None,
        }
    }
}

/// A streaming [`TraceSource`] over a ChampSim-style text trace (see the
/// module docs for the accepted line format). The open-time validation pass
/// streams the whole file once — O(1) memory — counting records and
/// instructions and rejecting the first malformed line with its number, so
/// replay itself cannot fail on syntax.
pub struct ChampsimTextSource {
    path: PathBuf,
    reader: BufReader<File>,
    name: String,
    record_count: u64,
    instructions: u64,
    emitted: u64,
    line: String,
}

impl ChampsimTextSource {
    /// Opens and validates a text trace file for streaming.
    ///
    /// # Errors
    ///
    /// Returns a [`TraceFileError`] if the file cannot be opened or any line
    /// fails to parse (the error carries the path and 1-based line number).
    pub fn open(path: impl AsRef<Path>) -> Result<Self, TraceFileError> {
        let path = path.as_ref().to_path_buf();
        let name = path
            .file_stem()
            .map(|stem| stem.to_string_lossy().into_owned())
            .unwrap_or_else(|| "champsim-trace".to_owned());
        // Validation pass: parse every line, count records and instructions.
        let file = File::open(&path).map_err(|e| TraceFileError::io(&path, "open", &e))?;
        let mut reader = BufReader::new(file);
        let mut line = String::new();
        let mut line_no = 0u64;
        let mut record_count = 0u64;
        let mut instructions = 0u64;
        loop {
            line.clear();
            let bytes = reader
                .read_line(&mut line)
                .map_err(|e| TraceFileError::io(&path, "read", &e))?;
            if bytes == 0 {
                break;
            }
            line_no += 1;
            match parse_champsim_line(&line) {
                Ok(Some(record)) => {
                    record_count += 1;
                    instructions += record.instructions();
                }
                Ok(None) => {}
                Err(message) => {
                    return Err(TraceFileError::Malformed {
                        path,
                        line: line_no,
                        message,
                    });
                }
            }
        }
        reader
            .seek(SeekFrom::Start(0))
            .map_err(|e| TraceFileError::io(&path, "seek", &e))?;
        Ok(Self {
            path,
            reader,
            name,
            record_count,
            instructions,
            emitted: 0,
            line,
        })
    }

    /// The path the source reads from.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl std::fmt::Debug for ChampsimTextSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChampsimTextSource")
            .field("path", &self.path)
            .field("name", &self.name)
            .field("record_count", &self.record_count)
            .field("emitted", &self.emitted)
            .finish()
    }
}

impl TraceSource for ChampsimTextSource {
    /// # Panics
    ///
    /// Panics if the file changes underneath the reader after the open-time
    /// validation pass.
    fn next_record(&mut self) -> Option<TraceRecord> {
        while self.emitted < self.record_count {
            self.line.clear();
            let bytes = self
                .reader
                .read_line(&mut self.line)
                .unwrap_or_else(|e| panic!("{}: read failed: {e}", self.path.display()));
            if bytes == 0 {
                panic!(
                    "{}: ended after {} of {} records although open-time validation \
                     saw them all (file changed mid-run?)",
                    self.path.display(),
                    self.emitted,
                    self.record_count
                );
            }
            match parse_champsim_line(&self.line) {
                Ok(Some(record)) => {
                    self.emitted += 1;
                    return Some(record);
                }
                Ok(None) => {}
                Err(message) => panic!(
                    "{}: line unparsable after open-time validation \
                     (file changed mid-run?): {message}",
                    self.path.display()
                ),
            }
        }
        None
    }

    fn reset(&mut self) {
        self.reader
            .seek(SeekFrom::Start(0))
            .unwrap_or_else(|e| panic!("{}: seek failed: {e}", self.path.display()));
        self.emitted = 0;
    }

    fn fork(&self) -> Box<dyn TraceSource> {
        // Reopen the file but reuse the already-established counts: the
        // open-time validation pass must not repeat per fork (the harness
        // forks once per prefetcher, and the file can be huge).
        let file = File::open(&self.path).unwrap_or_else(|e| {
            panic!(
                "{}: reopening for fork failed (file changed mid-run?): {e}",
                self.path.display()
            )
        });
        Box::new(Self {
            path: self.path.clone(),
            reader: BufReader::new(file),
            name: self.name.clone(),
            record_count: self.record_count,
            instructions: self.instructions,
            emitted: 0,
            line: String::new(),
        })
    }

    fn meta(&self) -> TraceMeta {
        TraceMeta {
            name: self.name.clone(),
            accesses: LengthHint::Exact(self.record_count),
            instructions: Some(self.instructions),
        }
    }
}

/// Parses one text-trace line: `Ok(None)` for blanks and comments,
/// `Ok(Some(record))` for an access, `Err(message)` otherwise.
fn parse_champsim_line(line: &str) -> Result<Option<TraceRecord>, String> {
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') {
        return Ok(None);
    }
    let mut fields = line.split_whitespace();
    let pc = parse_number(fields.next().ok_or("missing pc field")?)
        .ok_or_else(|| format!("bad pc in '{line}'"))?;
    let addr = parse_number(fields.next().ok_or("missing address field")?)
        .ok_or_else(|| format!("bad address in '{line}'"))?;
    let kind = fields.next().ok_or("missing kind field (L or S)")?;
    let record = match kind.to_ascii_uppercase().as_str() {
        "L" | "R" | "LOAD" | "READ" => TraceRecord::load(pc, addr),
        "S" | "W" | "STORE" | "WRITE" => TraceRecord::store(pc, addr),
        other => return Err(format!("unknown access kind '{other}' (use L or S)")),
    };
    let mut record = record;
    let mut next = fields.next();
    if let Some(field) = next {
        if let Ok(gap) = field.parse::<u32>() {
            record = record.with_gap(gap);
            next = fields.next();
        }
    }
    if let Some(field) = next {
        if field.eq_ignore_ascii_case("d") || field.eq_ignore_ascii_case("dep") {
            record = record.with_dependent(true);
            next = fields.next();
        } else {
            return Err(format!("unexpected trailing field '{field}'"));
        }
    }
    if let Some(field) = next {
        return Err(format!("unexpected trailing field '{field}'"));
    }
    Ok(Some(record))
}

/// Parses a decimal or `0x`-prefixed hex integer.
fn parse_number(text: &str) -> Option<u64> {
    if let Some(hex) = text.strip_prefix("0x").or_else(|| text.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        text.parse().ok()
    }
}

/// Opens a trace file as a streaming source, sniffing the format from the
/// magic bytes: `DSPT` selects the binary reader, anything else the
/// ChampSim-style text importer.
///
/// # Errors
///
/// Returns a [`TraceFileError`] if the file cannot be opened, is shorter
/// than the 4-byte magic (so its format cannot be sniffed — the error
/// carries the path and observed length), or fails validation in the
/// selected format.
pub fn open_trace_source(path: impl AsRef<Path>) -> Result<Box<dyn TraceSource>, TraceFileError> {
    let path = path.as_ref();
    let mut magic = [0u8; 4];
    let mut file = File::open(path).map_err(|e| TraceFileError::io(path, "open", &e))?;
    let sniffed = match file.read_exact(&mut magic) {
        Ok(()) => &magic == MAGIC,
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => {
            // Shorter than the magic: report the observed length instead of
            // guessing a format for a file that cannot hold one.
            let len = std::fs::metadata(path)
                .map_err(|stat_err| TraceFileError::io(path, "stat", &stat_err))?
                .len();
            return Err(TraceFileError::TooShort {
                path: path.to_path_buf(),
                len,
            });
        }
        Err(e) => return Err(TraceFileError::io(path, "read", &e)),
    };
    drop(file);
    if sniffed {
        Ok(Box::new(FileTraceSource::open(path)?))
    } else {
        Ok(Box::new(ChampsimTextSource::open(path)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::collect_source;

    fn sample_trace() -> Trace {
        Trace::new(
            "sample",
            vec![
                TraceRecord::load(0x400100, 0x7000_0000).with_gap(5),
                TraceRecord::store(0x400104, 0x7000_0040),
                TraceRecord::load(0x400108, 0x7000_1000)
                    .with_gap(100)
                    .with_dependent(true),
            ],
        )
    }

    fn temp_path(label: &str, extension: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "dspatch_trace_io_{label}_{}.{extension}",
            std::process::id()
        ))
    }

    #[test]
    fn round_trip_preserves_trace() {
        let trace = sample_trace();
        let mut buffer = Vec::new();
        write_trace(&trace, &mut buffer).expect("write to memory");
        let read = read_trace(buffer.as_slice()).expect("read back");
        assert_eq!(read, trace);
    }

    #[test]
    fn empty_trace_round_trips() {
        let trace = Trace::new("empty", Vec::new());
        let mut buffer = Vec::new();
        write_trace(&trace, &mut buffer).expect("write");
        assert_eq!(read_trace(buffer.as_slice()).expect("read"), trace);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let err = read_trace(&b"NOPE0000"[..]).expect_err("must fail");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_stream_is_rejected() {
        let trace = sample_trace();
        let mut buffer = Vec::new();
        write_trace(&trace, &mut buffer).expect("write");
        buffer.truncate(buffer.len() - 3);
        assert!(read_trace(buffer.as_slice()).is_err());
    }

    #[test]
    fn wrong_version_is_rejected() {
        let trace = sample_trace();
        let mut buffer = Vec::new();
        write_trace(&trace, &mut buffer).expect("write");
        buffer[4] = 99; // clobber the version field
        assert!(read_trace(buffer.as_slice()).is_err());
    }

    #[test]
    fn file_round_trip() {
        let path = temp_path("file_round_trip", "dspt");
        let trace = sample_trace();
        save_trace(&trace, &path).expect("save");
        let loaded = load_trace(&path).expect("load");
        std::fs::remove_file(&path).ok();
        assert_eq!(loaded, trace);
    }

    #[test]
    fn file_source_streams_identically_to_load_trace() {
        let path = temp_path("file_source", "dspt");
        let trace = sample_trace();
        save_trace(&trace, &path).expect("save");
        let mut source = FileTraceSource::open(&path).expect("open");
        let meta = source.meta();
        assert_eq!(meta.name, "sample");
        assert_eq!(meta.accesses, LengthHint::Exact(3));
        assert_eq!(collect_source(&mut source), trace);
        assert!(source.next_record().is_none());
        source.reset();
        assert_eq!(collect_source(&mut source), trace);
        let mut forked = source.fork();
        assert_eq!(collect_source(forked.as_mut()), trace);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn file_source_rejects_truncated_files() {
        let path = temp_path("file_source_truncated", "dspt");
        let trace = sample_trace();
        save_trace(&trace, &path).expect("save");
        let bytes = std::fs::read(&path).expect("read back");
        std::fs::write(&path, &bytes[..bytes.len() - 3]).expect("truncate");
        let err = FileTraceSource::open(&path).expect_err("must reject");
        assert!(
            matches!(
                err,
                TraceFileError::SizeMismatch {
                    record_count: 3,
                    ..
                }
            ),
            "got: {err:?}"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn files_shorter_than_the_magic_get_a_typed_error() {
        for (label, contents) in [("empty", &b""[..]), ("two_bytes", &b"DS"[..])] {
            let path = temp_path(&format!("too_short_{label}"), "trace");
            std::fs::write(&path, contents).expect("write");
            let err = match open_trace_source(&path) {
                Ok(_) => panic!("must reject a {label} file"),
                Err(e) => e,
            };
            match &err {
                TraceFileError::TooShort { path: p, len } => {
                    assert_eq!(p, &path);
                    assert_eq!(*len, contents.len() as u64);
                }
                other => panic!("expected TooShort, got {other:?}"),
            }
            assert!(err
                .to_string()
                .contains(&format!("{} bytes", contents.len())));
            let err = FileTraceSource::open(&path).expect_err("binary open must reject too");
            assert!(
                matches!(err, TraceFileError::TooShort { .. }),
                "got: {err:?}"
            );
            std::fs::remove_file(&path).ok();
        }
    }

    #[test]
    fn hostile_name_length_is_capped_before_allocation() {
        let path = temp_path("hostile_name_len", "trace");
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&VERSION.to_le_bytes());
        bytes.extend_from_slice(&u32::MAX.to_le_bytes()); // 4 GiB name claim
        std::fs::write(&path, &bytes).expect("write");
        let err = FileTraceSource::open(&path).expect_err("must reject");
        match &err {
            TraceFileError::Header { message, .. } => {
                assert!(message.contains("name length"), "got: {message}");
            }
            other => panic!("expected Header, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn trace_file_errors_render_the_path() {
        let path = temp_path("missing_for_display", "nope");
        let err = FileTraceSource::open(&path).expect_err("must fail");
        assert!(
            matches!(err, TraceFileError::Io { op: "stat", .. }),
            "got: {err:?}"
        );
        assert!(err.to_string().contains("missing_for_display"));
        let err = ChampsimTextSource::open(&path).expect_err("must fail");
        assert!(
            matches!(err, TraceFileError::Io { op: "open", .. }),
            "got: {err:?}"
        );
    }

    #[test]
    fn champsim_text_round_trips_every_field() {
        let path = temp_path("champsim", "txt");
        std::fs::write(
            &path,
            "# pc addr kind gap dep\n\
             0x400100 0x70000000 L 5\n\
             0x400104 0x70000040 S\n\
             \n\
             4194568 0x70001000 load 100 D\n",
        )
        .expect("write text trace");
        let mut source = ChampsimTextSource::open(&path).expect("open");
        let meta = source.meta();
        assert_eq!(meta.accesses, LengthHint::Exact(3));
        // 3 accesses + gaps of 5 and 100.
        assert_eq!(meta.instructions, Some(108));
        let collected = collect_source(&mut source);
        let mut expected = sample_trace();
        expected.name = meta.name.clone();
        assert_eq!(collected, expected);
        source.reset();
        assert_eq!(collect_source(&mut source), expected);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn champsim_text_reports_malformed_lines_with_numbers() {
        let path = temp_path("champsim_bad", "txt");
        std::fs::write(&path, "0x400 0x1000 L\nnot a record\n").expect("write");
        let err = ChampsimTextSource::open(&path).expect_err("must reject");
        let message = err.to_string();
        assert!(message.contains(":2:"), "got: {message}");
        std::fs::remove_file(&path).ok();

        for bad in [
            "0x400 0x1000 X\n",
            "0x400\n",
            "0x400 0x1000 L 5 D extra\n",
            "0x400 0x1000 L what\n",
        ] {
            std::fs::write(&path, bad).expect("write");
            assert!(
                ChampsimTextSource::open(&path).is_err(),
                "should reject: {bad:?}"
            );
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn open_trace_source_sniffs_the_format() {
        let binary_path = temp_path("sniff_binary", "trace");
        save_trace(&sample_trace(), &binary_path).expect("save");
        let mut source = open_trace_source(&binary_path).expect("open binary");
        assert_eq!(source.meta().name, "sample");
        assert_eq!(collect_source(source.as_mut()), sample_trace());
        std::fs::remove_file(&binary_path).ok();

        let text_path = temp_path("sniff_text", "champsim.txt");
        std::fs::write(&text_path, "0x400 0x1000 L 2\n").expect("write");
        let source = open_trace_source(&text_path).expect("open text");
        assert_eq!(source.meta().accesses, LengthHint::Exact(1));
        std::fs::remove_file(&text_path).ok();

        assert!(open_trace_source(temp_path("missing", "nope")).is_err());
    }
}
