//! A small binary on-disk trace format.
//!
//! Traces can be expensive to generate for long runs; this module lets the
//! harness cache them. The format is deliberately simple and versioned:
//!
//! ```text
//! magic "DSPT"  | u32 version | u32 name_len | name bytes
//! u64 record_count | records: { u64 pc | u64 addr | u8 flags | u32 gap } ...
//!
//! `flags` bit 0 is the store bit, bit 1 the dependent-load bit.
//! ```
//!
//! All integers are little-endian.

use crate::record::{Trace, TraceRecord};
use std::io::{self, Read, Write};

const MAGIC: &[u8; 4] = b"DSPT";
const VERSION: u32 = 1;

/// Writes a trace to `writer` in the binary format.
///
/// # Errors
///
/// Returns any I/O error from the underlying writer.
pub fn write_trace<W: Write>(trace: &Trace, mut writer: W) -> io::Result<()> {
    writer.write_all(MAGIC)?;
    writer.write_all(&VERSION.to_le_bytes())?;
    let name = trace.name.as_bytes();
    writer.write_all(&(name.len() as u32).to_le_bytes())?;
    writer.write_all(name)?;
    writer.write_all(&(trace.records.len() as u64).to_le_bytes())?;
    for record in &trace.records {
        writer.write_all(&record.pc.as_u64().to_le_bytes())?;
        writer.write_all(&record.addr.as_u64().to_le_bytes())?;
        let flags = u8::from(!record.kind.is_load()) | (u8::from(record.dependent) << 1);
        writer.write_all(&[flags])?;
        writer.write_all(&record.gap.to_le_bytes())?;
    }
    Ok(())
}

/// Reads a trace previously written by [`write_trace`].
///
/// # Errors
///
/// Returns an error if the stream is truncated, the magic number or version
/// does not match, or the embedded name is not valid UTF-8.
pub fn read_trace<R: Read>(mut reader: R) -> io::Result<Trace> {
    let mut magic = [0u8; 4];
    reader.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "not a DSPT trace file",
        ));
    }
    let version = read_u32(&mut reader)?;
    if version != VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unsupported trace version {version}"),
        ));
    }
    let name_len = read_u32(&mut reader)? as usize;
    let mut name_bytes = vec![0u8; name_len];
    reader.read_exact(&mut name_bytes)?;
    let name =
        String::from_utf8(name_bytes).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    let count = read_u64(&mut reader)? as usize;
    let mut records = Vec::with_capacity(count.min(1 << 24));
    for _ in 0..count {
        let pc = read_u64(&mut reader)?;
        let addr = read_u64(&mut reader)?;
        let mut flags = [0u8; 1];
        reader.read_exact(&mut flags)?;
        let gap = read_u32(&mut reader)?;
        let record = if flags[0] & 1 == 0 {
            TraceRecord::load(pc, addr)
        } else {
            TraceRecord::store(pc, addr)
        }
        .with_gap(gap)
        .with_dependent(flags[0] & 2 != 0);
        records.push(record);
    }
    Ok(Trace::new(name, records))
}

fn read_u32<R: Read>(reader: &mut R) -> io::Result<u32> {
    let mut buf = [0u8; 4];
    reader.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

fn read_u64<R: Read>(reader: &mut R) -> io::Result<u64> {
    let mut buf = [0u8; 8];
    reader.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

/// Convenience wrapper writing a trace to a file path.
///
/// # Errors
///
/// Returns any error from creating or writing the file.
pub fn save_trace(trace: &Trace, path: &std::path::Path) -> io::Result<()> {
    let file = std::fs::File::create(path)?;
    write_trace(trace, io::BufWriter::new(file))
}

/// Convenience wrapper reading a trace from a file path.
///
/// # Errors
///
/// Returns any error from opening or parsing the file.
pub fn load_trace(path: &std::path::Path) -> io::Result<Trace> {
    let file = std::fs::File::open(path)?;
    read_trace(io::BufReader::new(file))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> Trace {
        Trace::new(
            "sample",
            vec![
                TraceRecord::load(0x400100, 0x7000_0000).with_gap(5),
                TraceRecord::store(0x400104, 0x7000_0040),
                TraceRecord::load(0x400108, 0x7000_1000)
                    .with_gap(100)
                    .with_dependent(true),
            ],
        )
    }

    #[test]
    fn round_trip_preserves_trace() {
        let trace = sample_trace();
        let mut buffer = Vec::new();
        write_trace(&trace, &mut buffer).expect("write to memory");
        let read = read_trace(buffer.as_slice()).expect("read back");
        assert_eq!(read, trace);
    }

    #[test]
    fn empty_trace_round_trips() {
        let trace = Trace::new("empty", Vec::new());
        let mut buffer = Vec::new();
        write_trace(&trace, &mut buffer).expect("write");
        assert_eq!(read_trace(buffer.as_slice()).expect("read"), trace);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let err = read_trace(&b"NOPE0000"[..]).expect_err("must fail");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_stream_is_rejected() {
        let trace = sample_trace();
        let mut buffer = Vec::new();
        write_trace(&trace, &mut buffer).expect("write");
        buffer.truncate(buffer.len() - 3);
        assert!(read_trace(buffer.as_slice()).is_err());
    }

    #[test]
    fn wrong_version_is_rejected() {
        let trace = sample_trace();
        let mut buffer = Vec::new();
        write_trace(&trace, &mut buffer).expect("write");
        buffer[4] = 99; // clobber the version field
        assert!(read_trace(buffer.as_slice()).is_err());
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("dspatch_trace_io_test_{}.dspt", std::process::id()));
        let trace = sample_trace();
        save_trace(&trace, &path).expect("save");
        let loaded = load_trace(&path).expect("load");
        std::fs::remove_file(&path).ok();
        assert_eq!(loaded, trace);
    }
}
