//! The streaming trace API: pull-based, O(1)-memory trace sources.
//!
//! Every simulation path used to materialize a full `Vec<TraceRecord>`
//! before the machine saw a single access, so memory scaled linearly with
//! run length. [`TraceSource`] redesigns the trace layer the same way the
//! prefetcher API was redesigned around `PrefetchSink`: the simulator
//! *pulls* records one at a time, and where they come from — a synthetic
//! generator evaluated lazily ([`SynthSource`]), an owned in-memory trace
//! ([`MaterializedSource`]), a concatenation ([`ChainSource`]), or a file
//! on disk (see [`crate::io`]) — is the source's business.
//!
//! Sources also carry [`TraceMeta`] (name, exact-or-estimated access count,
//! instruction count when known) and support cheap [`TraceSource::reset`] /
//! [`TraceSource::fork`], which is what lets the experiment harness replay
//! one opened trace under many prefetchers without rereading or
//! regenerating it eagerly.
//!
//! # Example
//!
//! ```
//! use dspatch_trace::{SynthSource, TraceSource, GeneratorSpec, StreamGen, PatternGenerator};
//!
//! let spec = GeneratorSpec::Stream(StreamGen::default());
//! let mut source = SynthSource::new("demo", spec.clone(), 7, 1000);
//! let mut pulled = Vec::new();
//! while let Some(record) = source.next_record() {
//!     pulled.push(record);
//! }
//! // Bit-identical to the materialized form, without holding the trace.
//! assert_eq!(pulled, spec.generate_records(7, 1000));
//! assert_eq!(source.meta().accesses.value(), 1000);
//! ```

use crate::record::{Trace, TraceRecord};
use crate::synth::{GeneratorSpec, PatternGenerator, RecordStream};

/// How well a source knows its own length.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LengthHint {
    /// The source will produce exactly this many records.
    Exact(u64),
    /// Best-effort estimate (e.g. derived from a file size).
    Estimate(u64),
}

impl LengthHint {
    /// The hinted record count, exact or estimated.
    pub fn value(&self) -> u64 {
        match self {
            LengthHint::Exact(n) | LengthHint::Estimate(n) => *n,
        }
    }

    /// Whether the hint is exact.
    pub fn is_exact(&self) -> bool {
        matches!(self, LengthHint::Exact(_))
    }
}

/// Metadata a [`TraceSource`] carries alongside its record stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceMeta {
    /// Human-readable workload name.
    pub name: String,
    /// Number of memory accesses the source will produce.
    pub accesses: LengthHint,
    /// Total instructions (memory accesses plus gaps) when known without
    /// consuming the source.
    pub instructions: Option<u64>,
}

/// A pull-based stream of trace records with O(1) steady-state memory.
///
/// Unlike [`crate::synth::RecordStream`] (unbounded, raw generator state),
/// a `TraceSource` is *finite* — `next_record` returns `None` when the
/// trace ends — carries metadata, and can be rewound ([`TraceSource::reset`])
/// or duplicated ([`TraceSource::fork`]) so one trace can feed many
/// simulations.
pub trait TraceSource: Send {
    /// Produces the next record, or `None` once the trace is exhausted.
    fn next_record(&mut self) -> Option<TraceRecord>;

    /// Rewinds the source to its first record.
    fn reset(&mut self);

    /// Creates an independent copy of this source positioned at its first
    /// record, leaving `self` untouched. This is what the harness uses to
    /// replay one trace under several prefetchers.
    fn fork(&self) -> Box<dyn TraceSource>;

    /// The source's metadata.
    fn meta(&self) -> TraceMeta;
}

/// Conversion into a boxed [`TraceSource`], so `SimulationBuilder::with_core`
/// accepts sources and owned [`Trace`]s alike (the materialized trace is
/// just one adapter, [`MaterializedSource`]).
pub trait IntoTraceSource {
    /// Converts `self` into a boxed source.
    fn into_trace_source(self) -> Box<dyn TraceSource>;
}

impl<S: TraceSource + 'static> IntoTraceSource for S {
    fn into_trace_source(self) -> Box<dyn TraceSource> {
        Box::new(self)
    }
}

impl IntoTraceSource for Trace {
    fn into_trace_source(self) -> Box<dyn TraceSource> {
        Box::new(MaterializedSource::new(self))
    }
}

impl IntoTraceSource for Box<dyn TraceSource> {
    fn into_trace_source(self) -> Box<dyn TraceSource> {
        self
    }
}

/// Collects a source into an owned [`Trace`] (for analysis code that needs
/// random access; simulation paths should consume the source directly).
pub fn collect_source(source: &mut dyn TraceSource) -> Trace {
    let meta = source.meta();
    let mut records = Vec::new();
    if meta.accesses.is_exact() {
        records.reserve(meta.accesses.value() as usize);
    }
    while let Some(record) = source.next_record() {
        records.push(record);
    }
    Trace::new(meta.name, records)
}

/// The adapter keeping the owned, in-memory [`Trace`] usable wherever a
/// source is expected: a cursor over its record vector.
#[derive(Debug, Clone)]
pub struct MaterializedSource {
    trace: Trace,
    instructions: u64,
    cursor: usize,
}

impl MaterializedSource {
    /// Wraps an owned trace.
    pub fn new(trace: Trace) -> Self {
        let instructions = trace.instruction_count();
        Self {
            trace,
            instructions,
            cursor: 0,
        }
    }

    /// Returns the wrapped trace.
    pub fn into_trace(self) -> Trace {
        self.trace
    }
}

impl TraceSource for MaterializedSource {
    fn next_record(&mut self) -> Option<TraceRecord> {
        let record = self.trace.records.get(self.cursor).copied();
        if record.is_some() {
            self.cursor += 1;
        }
        record
    }

    fn reset(&mut self) {
        self.cursor = 0;
    }

    fn fork(&self) -> Box<dyn TraceSource> {
        Box::new(Self {
            trace: self.trace.clone(),
            instructions: self.instructions,
            cursor: 0,
        })
    }

    fn meta(&self) -> TraceMeta {
        TraceMeta {
            name: self.trace.name.clone(),
            accesses: LengthHint::Exact(self.trace.len() as u64),
            instructions: Some(self.instructions),
        }
    }
}

/// A lazily-evaluated synthetic workload: a [`GeneratorSpec`] streamed up to
/// a fixed length, holding only the generator's O(1) state. Bit-identical to
/// `spec.generate_records(seed, len)` by construction (the materialized form
/// is the same stream collected).
pub struct SynthSource {
    name: String,
    spec: GeneratorSpec,
    seed: u64,
    len: u64,
    emitted: u64,
    stream: Box<dyn RecordStream>,
}

impl SynthSource {
    /// Starts a source producing `len` records of `spec` seeded with `seed`.
    pub fn new(name: impl Into<String>, spec: GeneratorSpec, seed: u64, len: usize) -> Self {
        let stream = spec.stream(seed, len);
        Self {
            name: name.into(),
            spec,
            seed,
            len: len as u64,
            emitted: 0,
            stream,
        }
    }
}

impl std::fmt::Debug for SynthSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SynthSource")
            .field("name", &self.name)
            .field("seed", &self.seed)
            .field("len", &self.len)
            .field("emitted", &self.emitted)
            .finish()
    }
}

impl TraceSource for SynthSource {
    fn next_record(&mut self) -> Option<TraceRecord> {
        if self.emitted >= self.len {
            return None;
        }
        self.emitted += 1;
        Some(self.stream.next_record())
    }

    fn reset(&mut self) {
        self.stream = self.spec.stream(self.seed, self.len as usize);
        self.emitted = 0;
    }

    fn fork(&self) -> Box<dyn TraceSource> {
        Box::new(Self::new(
            self.name.clone(),
            self.spec.clone(),
            self.seed,
            self.len as usize,
        ))
    }

    fn meta(&self) -> TraceMeta {
        TraceMeta {
            name: self.name.clone(),
            accesses: LengthHint::Exact(self.len),
            instructions: None,
        }
    }
}

/// Sources played back to back, preserving O(1) memory (used e.g. by the
/// perf snapshot's multi-phase scenario trace).
pub struct ChainSource {
    name: String,
    parts: Vec<Box<dyn TraceSource>>,
    current: usize,
}

impl ChainSource {
    /// Chains `parts` in order under one name.
    pub fn new(name: impl Into<String>, parts: Vec<Box<dyn TraceSource>>) -> Self {
        Self {
            name: name.into(),
            parts,
            current: 0,
        }
    }
}

impl std::fmt::Debug for ChainSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChainSource")
            .field("name", &self.name)
            .field("parts", &self.parts.len())
            .field("current", &self.current)
            .finish()
    }
}

impl TraceSource for ChainSource {
    fn next_record(&mut self) -> Option<TraceRecord> {
        while self.current < self.parts.len() {
            if let Some(record) = self.parts[self.current].next_record() {
                return Some(record);
            }
            self.current += 1;
        }
        None
    }

    fn reset(&mut self) {
        for part in &mut self.parts {
            part.reset();
        }
        self.current = 0;
    }

    fn fork(&self) -> Box<dyn TraceSource> {
        Box::new(Self {
            name: self.name.clone(),
            parts: self.parts.iter().map(|part| part.fork()).collect(),
            current: 0,
        })
    }

    fn meta(&self) -> TraceMeta {
        let mut total = 0u64;
        let mut exact = true;
        let mut instructions = Some(0u64);
        for part in &self.parts {
            let meta = part.meta();
            total += meta.accesses.value();
            exact &= meta.accesses.is_exact();
            instructions = match (instructions, meta.instructions) {
                (Some(sum), Some(part)) => Some(sum + part),
                _ => None,
            };
        }
        TraceMeta {
            name: self.name.clone(),
            accesses: if exact {
                LengthHint::Exact(total)
            } else {
                LengthHint::Estimate(total)
            },
            instructions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::StreamGen;
    use crate::workloads::suite;

    fn spec() -> GeneratorSpec {
        GeneratorSpec::Stream(StreamGen::default())
    }

    #[test]
    fn synth_source_matches_materialized_generation() {
        for workload in suite().into_iter().take(5) {
            let trace = workload.generate(700);
            let mut source = workload.source(700);
            let streamed = collect_source(&mut source);
            assert_eq!(streamed, trace, "{}", workload.name);
            assert!(source.next_record().is_none(), "source must stay exhausted");
        }
    }

    #[test]
    fn synth_source_reset_and_fork_replay_from_the_start() {
        let mut source = SynthSource::new("s", spec(), 11, 300);
        let first: Vec<_> = std::iter::from_fn(|| source.next_record()).collect();
        assert_eq!(first.len(), 300);
        source.reset();
        let second: Vec<_> = std::iter::from_fn(|| source.next_record()).collect();
        assert_eq!(first, second);
        // A fork taken mid-stream still starts from record zero.
        source.reset();
        for _ in 0..50 {
            source.next_record();
        }
        let mut forked = source.fork();
        let forked_records: Vec<_> = std::iter::from_fn(|| forked.next_record()).collect();
        assert_eq!(forked_records, first);
        // And the original continues where it was.
        let rest: Vec<_> = std::iter::from_fn(|| source.next_record()).collect();
        assert_eq!(rest, first[50..]);
    }

    #[test]
    fn materialized_source_round_trips_a_trace() {
        let trace = Trace::new("m", spec().generate_records(3, 120));
        let expected_instructions = trace.instruction_count();
        let mut source = MaterializedSource::new(trace.clone());
        let meta = source.meta();
        assert_eq!(meta.name, "m");
        assert_eq!(meta.accesses, LengthHint::Exact(120));
        assert_eq!(meta.instructions, Some(expected_instructions));
        assert_eq!(collect_source(&mut source), trace);
        source.reset();
        assert_eq!(collect_source(&mut source), trace);
    }

    #[test]
    fn trace_converts_into_a_source() {
        let trace = Trace::new("adapter", spec().generate_records(5, 80));
        let mut source = trace.clone().into_trace_source();
        assert_eq!(collect_source(source.as_mut()), trace);
    }

    #[test]
    fn chain_source_concatenates_parts() {
        let a = SynthSource::new("a", spec(), 1, 100);
        let b = SynthSource::new("b", spec(), 2, 50);
        let mut chain = ChainSource::new("ab", vec![Box::new(a), Box::new(b)]);
        let meta = chain.meta();
        assert_eq!(meta.accesses, LengthHint::Exact(150));
        assert_eq!(meta.name, "ab");
        let collected = collect_source(&mut chain);
        let mut expected = spec().generate_records(1, 100);
        expected.extend(spec().generate_records(2, 50));
        assert_eq!(collected.records, expected);
        chain.reset();
        assert_eq!(collect_source(&mut chain).records, expected);
        let mut forked = chain.fork();
        assert_eq!(collect_source(forked.as_mut()).records, expected);
    }

    #[test]
    fn length_hint_reports_exactness() {
        assert!(LengthHint::Exact(5).is_exact());
        assert!(!LengthHint::Estimate(5).is_exact());
        assert_eq!(LengthHint::Exact(5).value(), 5);
        assert_eq!(LengthHint::Estimate(7).value(), 7);
    }
}
