//! The named workload suite.
//!
//! The paper evaluates 75 workloads in 9 categories (Table 4) and uses a
//! 42-workload memory-intensive subset for the line graph of Figure 13 and
//! the multi-programmed mixes. This module defines the synthetic stand-ins:
//! each named workload is a seeded [`GeneratorSpec`] whose structure mirrors
//! the paper's description of that category (see the crate docs and
//! `DESIGN.md` for the substitution argument).

use crate::record::Trace;
use crate::source::SynthSource;
use crate::synth::{
    CodeHeavyGen, GeneratorSpec, IrregularGen, MixedGen, PatternGenerator, PointerChaseGen,
    SpatialPatternGen, StreamGen, StridedGen,
};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The nine workload categories of Table 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum WorkloadCategory {
    /// Client applications (compression, media encode/decode).
    Client,
    /// Server workloads (TPC-C, SPECjbb, Spark): huge code footprints.
    Server,
    /// HPC kernels (linpack, NPB, PARSEC): dense regular streams.
    Hpc,
    /// SPEC CPU2006 floating point.
    Fspec06,
    /// SPEC CPU2006 integer.
    Ispec06,
    /// SPEC CPU2017 floating point.
    Fspec17,
    /// SPEC CPU2017 integer.
    Ispec17,
    /// Cloud / big-data workloads (BigBench, Cassandra, Hadoop).
    Cloud,
    /// SYSmark productivity applications.
    Sysmark,
}

impl WorkloadCategory {
    /// All categories in the order the paper's figures plot them.
    pub const ALL: [WorkloadCategory; 9] = [
        WorkloadCategory::Client,
        WorkloadCategory::Server,
        WorkloadCategory::Hpc,
        WorkloadCategory::Fspec06,
        WorkloadCategory::Ispec06,
        WorkloadCategory::Fspec17,
        WorkloadCategory::Ispec17,
        WorkloadCategory::Cloud,
        WorkloadCategory::Sysmark,
    ];

    /// Short label used in reports (matches the paper's x-axis labels).
    pub fn label(self) -> &'static str {
        match self {
            WorkloadCategory::Client => "Client",
            WorkloadCategory::Server => "Server",
            WorkloadCategory::Hpc => "HPC",
            WorkloadCategory::Fspec06 => "FSPEC06",
            WorkloadCategory::Ispec06 => "ISPEC06",
            WorkloadCategory::Fspec17 => "FSPEC17",
            WorkloadCategory::Ispec17 => "ISPEC17",
            WorkloadCategory::Cloud => "Cloud",
            WorkloadCategory::Sysmark => "SYSmark",
        }
    }
}

impl fmt::Display for WorkloadCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A named synthetic workload: category, generator and seed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Workload name (synthetic stand-in for a SPEC/server/cloud benchmark).
    pub name: String,
    /// Category the workload belongs to.
    pub category: WorkloadCategory,
    /// Generator producing the access pattern.
    pub generator: GeneratorSpec,
    /// Seed making the workload deterministic.
    pub seed: u64,
    /// Whether the workload belongs to the 42-entry memory-intensive subset.
    pub memory_intensive: bool,
}

impl WorkloadSpec {
    /// Generates a trace of `accesses` memory accesses for this workload.
    pub fn generate(&self, accesses: usize) -> Trace {
        Trace::new(
            self.name.clone(),
            self.generator.generate_records(self.seed, accesses),
        )
    }

    /// Starts a lazily-evaluated streaming source of `accesses` records —
    /// bit-identical to [`WorkloadSpec::generate`] without materializing the
    /// trace (O(1) memory however long the run).
    pub fn source(&self, accesses: usize) -> SynthSource {
        SynthSource::new(
            self.name.clone(),
            self.generator.clone(),
            self.seed,
            accesses,
        )
    }
}

fn spatial(layouts: usize, density: usize, reorder: usize, gap: u32) -> GeneratorSpec {
    GeneratorSpec::Spatial(SpatialPatternGen {
        layouts,
        density,
        reorder_window: reorder,
        working_set_pages: 1 << 14,
        gap,
    })
}

fn stream(streams: usize, gap: u32) -> GeneratorSpec {
    GeneratorSpec::Stream(StreamGen {
        streams,
        gap,
        store_percent: 20,
    })
}

fn strided(stride: u64, streams: usize, gap: u32) -> GeneratorSpec {
    GeneratorSpec::Strided(StridedGen {
        stride_lines: stride,
        streams,
        gap,
    })
}

fn irregular(pages: u64, per_page: usize, gap: u32) -> GeneratorSpec {
    GeneratorSpec::Irregular(IrregularGen {
        footprint_pages: pages,
        accesses_per_page: per_page,
        pcs: 32,
        gap,
    })
}

fn chase(nodes: u64, gap: u32) -> GeneratorSpec {
    GeneratorSpec::PointerChase(PointerChaseGen {
        nodes,
        node_bytes: 192,
        gap,
    })
}

fn code_heavy(pcs: usize, gap: u32) -> GeneratorSpec {
    GeneratorSpec::CodeHeavy(CodeHeavyGen {
        distinct_pcs: pcs,
        burst: 3,
        footprint_pages: 1 << 15,
        gap,
    })
}

fn mix(parts: Vec<(u32, GeneratorSpec)>) -> GeneratorSpec {
    GeneratorSpec::Mixed(MixedGen::new(parts))
}

struct CategoryPlan {
    category: WorkloadCategory,
    names: &'static [&'static str],
    memory_intensive: &'static [bool],
    build: fn(usize) -> GeneratorSpec,
}

fn category_plans() -> Vec<CategoryPlan> {
    vec![
        CategoryPlan {
            category: WorkloadCategory::Client,
            names: &[
                "7zip-compress",
                "7zip-decompress",
                "vp9-encode",
                "vp9-decode",
                "image-filter",
                "pdf-render",
                "browser-layout",
                "audio-transcode",
            ],
            memory_intensive: &[true, true, true, false, true, false, false, false],
            build: |i| {
                mix(vec![
                    (3, stream(2 + i % 3, 48)),
                    (2, spatial(8 + i, 8, 4, 40)),
                    (1, irregular(1 << 14, 2, 36)),
                ])
            },
        },
        CategoryPlan {
            category: WorkloadCategory::Server,
            names: &[
                "tpcc",
                "specjbb2015",
                "specjenterprise",
                "spark-pagerank",
                "web-frontend",
                "mail-index",
                "rpc-broker",
                "db-oltp",
            ],
            memory_intensive: &[true, true, false, true, false, false, false, true],
            build: |i| {
                mix(vec![
                    (4, code_heavy(3000 + i * 500, 36)),
                    (2, irregular(1 << 15, 2, 40)),
                    (1, stream(2, 48)),
                ])
            },
        },
        CategoryPlan {
            category: WorkloadCategory::Hpc,
            names: &[
                "linpack",
                "npb-cg",
                "npb-mg",
                "npb-ft",
                "parsec-stream",
                "stencil-2d",
                "spec-accel-lbm",
                "spmv",
                "fft-batch",
            ],
            memory_intensive: &[true, true, true, true, false, false, true, false, false],
            build: |i| {
                mix(vec![
                    (5, stream(4 + i % 4, 40)),
                    (2, strided(2 + (i as u64 % 6), 2, 44)),
                ])
            },
        },
        CategoryPlan {
            category: WorkloadCategory::Fspec06,
            names: &[
                "sphinx3",
                "soplex",
                "gemsfdtd",
                "lbm06",
                "milc",
                "leslie3d",
                "zeusmp",
                "cactusadm",
                "bwaves06",
            ],
            memory_intensive: &[true, true, true, true, true, true, false, false, false],
            build: |i| {
                mix(vec![
                    (4, stream(3, 44)),
                    (3, strided(1 + (i as u64 % 8), 2, 48)),
                    (1, spatial(6, 12, 3, 40)),
                ])
            },
        },
        CategoryPlan {
            category: WorkloadCategory::Ispec06,
            names: &[
                "mcf06",
                "omnetpp06",
                "gcc06",
                "astar",
                "xalancbmk06",
                "libquantum",
                "bzip2",
                "gobmk",
            ],
            memory_intensive: &[true, true, true, true, true, false, false, false],
            build: |i| {
                mix(vec![
                    (3, chase(1 << (14 + i % 3), 20)),
                    (3, spatial(10 + i, 9, 6, 36)),
                    (2, irregular(1 << 15, 2, 36)),
                    (1, stream(2, 44)),
                ])
            },
        },
        CategoryPlan {
            category: WorkloadCategory::Fspec17,
            names: &[
                "lbm17",
                "cam4",
                "roms",
                "fotonik3d",
                "nab",
                "bwaves17",
                "wrf",
                "povray",
                "namd",
            ],
            memory_intensive: &[true, true, true, true, false, true, false, false, false],
            build: |i| {
                mix(vec![
                    (5, stream(4, 40)),
                    (2, strided(3 + (i as u64 % 5), 3, 44)),
                ])
            },
        },
        CategoryPlan {
            category: WorkloadCategory::Ispec17,
            names: &[
                "mcf17",
                "omnetpp17",
                "xalancbmk17",
                "leela",
                "deepsjeng",
                "x264",
                "gcc17",
                "xz",
            ],
            memory_intensive: &[true, true, true, false, false, false, true, false],
            build: |i| {
                mix(vec![
                    (4, spatial(14 + i, 8, 8, 36)),
                    (2, irregular(1 << 16, 2, 36)),
                    (2, chase(1 << 15, 24)),
                ])
            },
        },
        CategoryPlan {
            category: WorkloadCategory::Cloud,
            names: &[
                "bigbench-q1",
                "cassandra-read",
                "cassandra-write",
                "hbase-scan",
                "kmeans",
                "streaming-agg",
                "hadoop-sort",
                "kv-store",
            ],
            memory_intensive: &[true, true, true, true, false, true, false, false],
            build: |i| {
                mix(vec![
                    (4, spatial(16 + i * 2, 7, 7, 36)),
                    (3, irregular(1 << 16, 2, 40)),
                    (1, code_heavy(2000, 36)),
                ])
            },
        },
        CategoryPlan {
            category: WorkloadCategory::Sysmark,
            names: &[
                "sysmark-excel",
                "sysmark-word",
                "sysmark-photoshop",
                "sysmark-sketchup",
                "sysmark-media",
                "sysmark-mail",
                "sysmark-browse",
                "sysmark-archive",
            ],
            memory_intensive: &[true, false, true, true, false, false, true, false],
            build: |i| {
                mix(vec![
                    (4, spatial(12 + i, 6, 5, 40)),
                    (2, code_heavy(1500 + i * 200, 40)),
                    (1, stream(2, 48)),
                ])
            },
        },
    ]
}

/// Builds the full 75-workload suite (Table 4).
pub fn suite() -> Vec<WorkloadSpec> {
    let mut workloads = Vec::with_capacity(75);
    for (plan_index, plan) in category_plans().into_iter().enumerate() {
        assert_eq!(
            plan.names.len(),
            plan.memory_intensive.len(),
            "category plan arrays must line up"
        );
        for (i, name) in plan.names.iter().enumerate() {
            workloads.push(WorkloadSpec {
                name: (*name).to_owned(),
                category: plan.category,
                generator: (plan.build)(i),
                seed: 0xD5_0000 + plan_index as u64 * 1000 + i as u64,
                memory_intensive: plan.memory_intensive[i],
            });
        }
    }
    workloads
}

/// The 42-workload memory-intensive subset used by Figure 13 and the
/// multi-programmed experiments.
pub fn memory_intensive_suite() -> Vec<WorkloadSpec> {
    suite().into_iter().filter(|w| w.memory_intensive).collect()
}

/// Returns the workloads of one category.
pub fn category_suite(category: WorkloadCategory) -> Vec<WorkloadSpec> {
    suite()
        .into_iter()
        .filter(|w| w.category == category)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn suite_has_75_workloads_across_9_categories() {
        let all = suite();
        assert_eq!(all.len(), 75);
        let categories: BTreeSet<WorkloadCategory> = all.iter().map(|w| w.category).collect();
        assert_eq!(categories.len(), 9);
    }

    #[test]
    fn memory_intensive_subset_has_42_workloads() {
        assert_eq!(memory_intensive_suite().len(), 42);
    }

    #[test]
    fn names_are_unique() {
        let all = suite();
        let names: BTreeSet<&str> = all.iter().map(|w| w.name.as_str()).collect();
        assert_eq!(names.len(), all.len());
    }

    #[test]
    fn seeds_are_unique() {
        let all = suite();
        let seeds: BTreeSet<u64> = all.iter().map(|w| w.seed).collect();
        assert_eq!(seeds.len(), all.len());
    }

    #[test]
    fn every_category_has_workloads() {
        for category in WorkloadCategory::ALL {
            assert!(!category_suite(category).is_empty(), "{category} is empty");
        }
    }

    #[test]
    fn workload_generation_is_deterministic() {
        let all = suite();
        let w = &all[0];
        assert_eq!(w.generate(500), w.generate(500));
    }

    #[test]
    fn category_structures_differ() {
        // HPC is dense (few pages, each fully walked); Cloud is sparse and
        // spreads the same number of accesses over far more pages.
        let hpc = category_suite(WorkloadCategory::Hpc)[0].generate(5000);
        let cloud = category_suite(WorkloadCategory::Cloud)[0].generate(5000);
        assert!(
            cloud.footprint_pages() > hpc.footprint_pages() * 3,
            "Cloud ({} pages) should be much sparser than HPC ({} pages)",
            cloud.footprint_pages(),
            hpc.footprint_pages()
        );
    }

    #[test]
    fn server_workloads_have_large_pc_footprints() {
        let server = category_suite(WorkloadCategory::Server)[0].generate(20_000);
        let hpc = category_suite(WorkloadCategory::Hpc)[0].generate(20_000);
        assert!(server.distinct_pcs() > hpc.distinct_pcs() * 10);
    }

    #[test]
    fn labels_match_paper_axis_labels() {
        assert_eq!(WorkloadCategory::Hpc.label(), "HPC");
        assert_eq!(WorkloadCategory::Sysmark.label(), "SYSmark");
        assert_eq!(WorkloadCategory::ALL.len(), 9);
    }
}
