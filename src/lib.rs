//! Umbrella crate for the DSPatch reproduction workspace.
//!
//! Re-exports the member crates so the repository-level examples and
//! integration tests have a single dependency. Library users should depend
//! on the individual crates directly:
//!
//! * [`dspatch`] — the DSPatch prefetcher itself (the paper's contribution).
//! * [`dspatch_prefetchers`] — SPP, BOP, SMS, AMPM, stride, streamer and the
//!   adjunct combinations.
//! * [`dspatch_sim`] — the cache/DRAM/core simulator substrate.
//! * [`dspatch_trace`] — synthetic workloads and multi-programmed mixes.
//! * [`dspatch_harness`] — the per-figure/table experiment harness.
//! * [`dspatch_types`] — shared address/access/prefetch types.

pub use dspatch;
pub use dspatch_harness;
pub use dspatch_prefetchers;
pub use dspatch_sim;
pub use dspatch_trace;
pub use dspatch_types;

/// Number of accesses an example should simulate per workload: `default`,
/// unless the `DSPATCH_EXAMPLE_ACCESSES` environment variable overrides it.
///
/// The repository's example smoke tests set the variable to a tiny value so
/// every example can be executed end-to-end in CI without paying for the
/// demo-sized simulations the examples run by default.
pub fn example_accesses(default: usize) -> usize {
    std::env::var("DSPATCH_EXAMPLE_ACCESSES")
        .ok()
        .and_then(|value| value.parse().ok())
        .unwrap_or(default)
}
