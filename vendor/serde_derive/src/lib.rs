//! No-op stand-ins for serde's derive macros, vendored because this build
//! environment has no network access to a Cargo registry.
//!
//! The workspace only ever *derives* `Serialize`/`Deserialize` (for
//! forward-compatibility of its config and stats types); nothing calls a
//! serializer, so the derives can legally expand to nothing. The
//! `attributes(serde)` registration keeps field annotations such as
//! `#[serde(default)]` accepted as inert helper attributes.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
