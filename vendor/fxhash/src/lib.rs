//! Minimal stand-in for the [rustc-hash](https://crates.io/crates/rustc-hash)
//! / [fxhash](https://crates.io/crates/fxhash) crates, vendored because this
//! build environment has no network access to a Cargo registry.
//!
//! `FxHasher` is the multiply-rotate hash used by the Rust compiler's
//! internal hash tables: not cryptographic, not DoS-resistant, but several
//! times faster than the standard library's SipHash for small keys. The
//! simulator uses it for the pending-DRAM-fill and pollution-victim tables
//! keyed by 64-bit line addresses, which sit on the per-access hot path.

use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` specialized to [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// `HashSet` specialized to [`FxHasher`].
pub type FxHashSet<K> = std::collections::HashSet<K, FxBuildHasher>;

/// `BuildHasher` producing [`FxHasher`]s.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// The Fx (Firefox/rustc) hasher: `hash = (hash.rotl(5) ^ word) * SEED` per
/// input word.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in chunks.by_ref() {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.add_to_hash(i as u64);
        self.add_to_hash((i >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_i64(&mut self, i: i64) {
        self.add_to_hash(i as u64);
    }
}

/// Hashes a single value with [`FxHasher`] (convenience for tests and
/// standalone index computations).
pub fn hash64<T: std::hash::Hash>(value: &T) -> u64 {
    let mut hasher = FxHasher::default();
    value.hash(&mut hasher);
    hasher.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_input_same_hash() {
        assert_eq!(hash64(&42u64), hash64(&42u64));
        assert_eq!(hash64(&"spatial"), hash64(&"spatial"));
    }

    #[test]
    fn different_inputs_differ() {
        // Not a strong guarantee in general, but these must differ for the
        // hash to be at all useful.
        assert_ne!(hash64(&1u64), hash64(&2u64));
        assert_ne!(hash64(&0x1000u64), hash64(&0x2000u64));
    }

    #[test]
    fn byte_writes_cover_remainders() {
        let mut h = FxHasher::default();
        h.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11]);
        let full = h.finish();
        let mut h2 = FxHasher::default();
        h2.write(&[1, 2, 3, 4, 5, 6, 7, 8]);
        h2.write(&[9, 10, 11]);
        assert_ne!(full, 0);
        let _ = h2.finish();
    }

    #[test]
    fn map_and_set_aliases_work() {
        let mut map: FxHashMap<u64, &str> = FxHashMap::default();
        map.insert(7, "seven");
        assert_eq!(map.get(&7), Some(&"seven"));
        let mut set: FxHashSet<u64> = FxHashSet::default();
        assert!(set.insert(9));
        assert!(!set.insert(9));
        assert!(set.contains(&9));
    }

    #[test]
    fn sequential_line_addresses_spread() {
        // Cache-line addresses are sequential integers; the hash must spread
        // them across low bits (what a HashMap actually indexes by).
        let mut low_bits = FxHashSet::default();
        for line in 0..1024u64 {
            low_bits.insert(hash64(&line) & 0x7f);
        }
        assert!(
            low_bits.len() > 100,
            "sequential keys collapsed onto {} of 128 buckets",
            low_bits.len()
        );
    }
}
