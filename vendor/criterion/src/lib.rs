//! Minimal, dependency-free stand-in for the
//! [criterion](https://crates.io/crates/criterion) crate, vendored because
//! this build environment has no network access to a Cargo registry.
//!
//! It implements the subset of the API the workspace's bench targets use —
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::sample_size`],
//! [`BenchmarkGroup::bench_function`], [`Bencher::iter`], [`black_box`] and
//! the [`criterion_group!`]/[`criterion_main!`] macros — with a simple
//! wall-clock measurement loop: per sample it times one batch of iterations
//! and reports min/mean/max over the samples.
//!
//! Command-line arguments passed by `cargo bench`/`cargo test` are accepted
//! and ignored, except `--test`, which (as in real criterion) runs each
//! benchmark exactly once for validation instead of measuring it.

use std::time::{Duration, Instant};

/// Re-export hint equivalent to `criterion::black_box`; routes through
/// `std::hint::black_box`, which is what recent criterion versions do.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Top-level benchmark driver.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Self { test_mode }
    }
}

impl Criterion {
    /// Final configuration step in generated `main`s; a no-op here beyond
    /// what [`Default`] already read from the command line.
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 100,
            test_mode: self.test_mode,
            _criterion: std::marker::PhantomData,
        }
    }

    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let test_mode = self.test_mode;
        run_one(name, 10, test_mode, f);
        self
    }
}

/// A named group of related benchmark functions.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    test_mode: bool,
    _criterion: std::marker::PhantomData<&'a mut Criterion>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples;
        self
    }

    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name);
        run_one(&full, self.sample_size, self.test_mode, f);
        self
    }

    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, samples: usize, test_mode: bool, mut f: F) {
    let mut bencher = Bencher {
        samples: if test_mode { 1 } else { samples.max(1) },
        durations: Vec::new(),
    };
    f(&mut bencher);
    if test_mode {
        println!("Testing {name} ... ok");
        return;
    }
    let n = bencher.durations.len().max(1) as u32;
    let total: Duration = bencher.durations.iter().sum();
    let mean = total / n;
    let min = bencher.durations.iter().min().copied().unwrap_or_default();
    let max = bencher.durations.iter().max().copied().unwrap_or_default();
    println!("{name:<60} time: [{min:>10.2?} {mean:>10.2?} {max:>10.2?}]");
}

/// Passed to each benchmark closure; [`Bencher::iter`] runs and times the
/// measured routine.
pub struct Bencher {
    samples: usize,
    durations: Vec<Duration>,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        self.durations.clear();
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.durations.push(start.elapsed());
        }
    }
}

/// Declares a group function that runs each listed benchmark target.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
