//! Minimal, dependency-free stand-in for the [rand](https://crates.io/crates/rand)
//! crate (0.9 API), vendored because this build environment has no network
//! access to a Cargo registry.
//!
//! Implements exactly what the workspace's synthetic trace generators use:
//! [`rngs::SmallRng`] seeded via [`SeedableRng::seed_from_u64`],
//! [`Rng::random_range`] over integer ranges, and
//! [`seq::SliceRandom::shuffle`]. The generator is xoshiro256++, the same
//! family real `SmallRng` uses on 64-bit targets; it is deterministic for a
//! given seed, which is all the trace generators rely on.

use std::ops::{Range, RangeInclusive};

/// Core source of randomness (subset of `rand_core::RngCore`).
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators (subset of `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`] as in real rand.
pub trait Rng: RngCore {
    /// Uniform value in `range`; panics on an empty range.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Ranges that can be sampled uniformly (subset of
/// `rand::distr::uniform::SampleRange`).
pub trait SampleRange<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),+) => {
        $(
            impl SampleRange<$t> for Range<$t> {
                fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start.wrapping_add((rng.next_u64() % span) as $t)
                }
            }

            impl SampleRange<$t> for RangeInclusive<$t> {
                fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "cannot sample empty range");
                    let span = (end as u64).wrapping_sub(start as u64);
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    start.wrapping_add((rng.next_u64() % (span + 1)) as $t)
                }
            }
        )+
    };
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

pub mod rngs {
    //! Concrete generators (subset of `rand::rngs`).

    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic PRNG: xoshiro256++, seeded through
    /// splitmix64 exactly as the reference implementation recommends.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence-related extensions (subset of `rand::seq`).

    use super::RngCore;

    /// Shuffling for slices, as in `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            // Fisher–Yates.
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}
