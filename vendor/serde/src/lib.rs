//! Minimal stand-in for the [serde](https://crates.io/crates/serde) facade,
//! vendored because this build environment has no network access to a Cargo
//! registry.
//!
//! The workspace derives `Serialize`/`Deserialize` on its config and stats
//! types but never invokes a serializer, so the derives expand to nothing
//! (see the vendored `serde_derive`) and the trait names below exist only so
//! `use serde::{Deserialize, Serialize}` resolves. If a future PR needs real
//! serialization, replace `vendor/serde*` with the genuine crates.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`. The no-op derive does
/// not implement it; add real serde before writing `T: Serialize` bounds.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}
