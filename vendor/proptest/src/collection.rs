//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// Accepted length specifications for [`vec`], mirroring
/// `proptest::collection::SizeRange`.
#[derive(Clone, Debug)]
pub struct SizeRange {
    min: usize,
    max_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        Self {
            min: exact,
            max_inclusive: exact,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(range: Range<usize>) -> Self {
        assert!(range.start < range.end, "empty size range");
        Self {
            min: range.start,
            max_inclusive: range.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(range: RangeInclusive<usize>) -> Self {
        assert!(range.start() <= range.end(), "empty size range");
        Self {
            min: *range.start(),
            max_inclusive: *range.end(),
        }
    }
}

/// The strategy returned by [`vec`].
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let span = (self.size.max_inclusive - self.size.min) as u64;
        let len = self.size.min + rng.below(span + 1) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// A strategy producing vectors whose elements come from `element` and whose
/// length falls in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}
