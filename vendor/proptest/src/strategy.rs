//! Value-generation strategies: integer ranges, tuples, constants.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type. Unlike real proptest there is
/// no shrinking tree — `generate` returns the value directly.
pub trait Strategy {
    type Value: std::fmt::Debug;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

/// A strategy that always yields the same value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone + std::fmt::Debug>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),+) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u64) - (self.start as u64);
                    self.start + (rng.below(span) as $t)
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as u64) - (start as u64);
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    start + (rng.below(span + 1) as $t)
                }
            }
        )+
    };
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+);)+) => {
        $(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )+
    };
}

impl_tuple_strategy! {
    (A.0);
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
    (A.0, B.1, C.2, D.3, E.4);
    (A.0, B.1, C.2, D.3, E.4, F.5);
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6);
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);
}

/// A strategy producing values derived from another strategy's output, the
/// subset of real proptest's `Strategy::prop_map` this workspace uses.
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S, F, T> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
    T: std::fmt::Debug,
{
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.map)(self.source.generate(rng))
    }
}

/// Extension trait adding `prop_map` to every strategy (real proptest has it
/// on `Strategy` itself; an extension trait keeps the shim's core trait
/// object-safe and minimal).
pub trait StrategyExt: Strategy + Sized {
    fn prop_map<T: std::fmt::Debug, F: Fn(Self::Value) -> T>(self, map: F) -> Map<Self, F> {
        Map { source: self, map }
    }
}

impl<S: Strategy + Sized> StrategyExt for S {}
