//! Minimal, dependency-free stand-in for the [proptest](https://crates.io/crates/proptest)
//! crate, vendored because this build environment has no network access to a
//! Cargo registry.
//!
//! It implements exactly the subset of the proptest API the workspace's
//! property tests use:
//!
//! * the [`proptest!`] macro (with an optional `#![proptest_config(..)]`
//!   header) generating one `#[test]` per property,
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`] and
//!   [`prop_assume!`],
//! * `any::<T>()` for the primitive integer types and `bool`,
//! * integer `Range` / `RangeInclusive` strategies, tuple strategies up to
//!   arity 6, and `proptest::collection::vec`.
//!
//! Generation is a deterministic splitmix64 stream (no shrinking); on
//! failure the offending input is printed so a failing case can be turned
//! into a concrete regression test by hand.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    //! The glob-importable surface, mirroring `proptest::prelude`.
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy, StrategyExt};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError, TestRunner};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Declares property tests. Each `fn name(arg in strategy, ...) { body }`
/// item expands to a `#[test]` that runs the body against `Config::cases`
/// generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )+
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                let mut runner = $crate::test_runner::TestRunner::new(config);
                let strategy = ($($strat,)+);
                let result = runner.run(&strategy, |($($arg,)+)| {
                    $body
                    Ok(())
                });
                if let Err(message) = result {
                    panic!("{}", message);
                }
            }
        )+
    };
}

/// Fails the current test case (with the generated inputs reported) when the
/// condition does not hold.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// [`prop_assert!`] specialised to equality, reporting both operands.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)+),
            left,
            right
        );
    }};
}

/// [`prop_assert!`] specialised to inequality, reporting both operands.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

/// Discards the current test case when the assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}
