//! `any::<T>()` — full-domain strategies for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical full-domain generator, mirroring
/// `proptest::arbitrary::Arbitrary` for the primitives this workspace uses.
pub trait Arbitrary: std::fmt::Debug + Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),+) => {
        $(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )+
    };
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_arbitrary_int {
    ($($t:ty),+) => {
        $(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )+
    };
}

impl_arbitrary_int!(i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The strategy returned by [`any`].
#[derive(Clone, Copy, Debug, Default)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy producing any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}
