//! The deterministic test runner behind the [`proptest!`](crate::proptest)
//! macro: a splitmix64 input stream, a case budget, and failure reporting.

use crate::strategy::Strategy;

/// Deterministic pseudo-random source (splitmix64). A fixed seed keeps runs
/// reproducible across machines; there is no shrinking, so reproducibility is
/// what makes failures actionable.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn from_seed(seed: u64) -> Self {
        Self { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }
}

/// Mirrors `proptest::test_runner::Config` for the options this workspace
/// sets.
#[derive(Clone, Debug)]
pub struct Config {
    /// Number of generated inputs per property.
    pub cases: u32,
}

impl Config {
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Why a single test case did not pass: a hard failure (assertion) or a
/// rejection (`prop_assume!`).
#[derive(Clone, Debug)]
pub enum TestCaseError {
    Fail(String),
    Reject(String),
}

impl TestCaseError {
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail(message.into())
    }

    pub fn reject(condition: impl Into<String>) -> Self {
        TestCaseError::Reject(condition.into())
    }
}

/// Runs one property against `Config::cases` generated inputs.
pub struct TestRunner {
    config: Config,
    rng: TestRng,
}

impl TestRunner {
    pub fn new(config: Config) -> Self {
        Self {
            config,
            // Arbitrary fixed seed: determinism matters, the value does not.
            rng: TestRng::from_seed(0x5eed_da7a_0001),
        }
    }

    /// Generates inputs from `strategy` and feeds them to `test`. Returns a
    /// human-readable failure description on the first failing case, after
    /// at most `cases` accepted cases (rejections get a bounded retry
    /// budget, like real proptest).
    pub fn run<S, F>(&mut self, strategy: &S, mut test: F) -> Result<(), String>
    where
        S: Strategy,
        F: FnMut(S::Value) -> Result<(), TestCaseError>,
    {
        let max_rejects = self.config.cases.saturating_mul(4).max(1024);
        let mut rejects = 0u32;
        let mut case = 0u32;
        while case < self.config.cases {
            let value = strategy.generate(&mut self.rng);
            let reported = format!("{value:?}");
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| test(value)));
            match outcome {
                Ok(Ok(())) => case += 1,
                Ok(Err(TestCaseError::Reject(cond))) => {
                    rejects += 1;
                    if rejects > max_rejects {
                        return Err(format!(
                            "too many input rejections ({rejects}); last assumption: {cond}"
                        ));
                    }
                }
                Ok(Err(TestCaseError::Fail(message))) => {
                    return Err(format!(
                        "property failed at case {case}: {message}\n input: {reported}"
                    ));
                }
                Err(panic) => {
                    let message = panic
                        .downcast_ref::<&str>()
                        .map(|s| s.to_string())
                        .or_else(|| panic.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "<non-string panic>".to_string());
                    return Err(format!(
                        "property panicked at case {case}: {message}\n input: {reported}"
                    ));
                }
            }
        }
        Ok(())
    }
}
